"""Unit tests for the BitArray."""

from __future__ import annotations

import pytest

from repro.core.bitarray import BitArray
from repro.errors import ConfigurationError


class TestConstruction:
    def test_starts_empty(self):
        bits = BitArray(100)
        assert len(bits) == 100
        assert bits.count() == 0
        assert bits.fill_ratio() == 0.0

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            BitArray(0)
        with pytest.raises(ConfigurationError):
            BitArray(-5)

    def test_from_indices(self):
        bits = BitArray.from_indices(16, [0, 3, 15])
        assert bits.test(0) and bits.test(3) and bits.test(15)
        assert bits.count() == 3


class TestSetTestClear:
    def test_set_and_test(self):
        bits = BitArray(64)
        bits.set(10)
        assert bits.test(10)
        assert not bits.test(11)

    def test_clear(self):
        bits = BitArray(64)
        bits.set(10)
        bits.clear(10)
        assert not bits.test(10)

    def test_setitem_getitem(self):
        bits = BitArray(8)
        bits[3] = True
        assert bits[3]
        bits[3] = False
        assert not bits[3]

    def test_negative_index_wraps(self):
        bits = BitArray(10)
        bits.set(-1)
        assert bits.test(9)

    def test_out_of_range(self):
        bits = BitArray(10)
        with pytest.raises(IndexError):
            bits.set(10)
        with pytest.raises(IndexError):
            bits.test(-11)

    def test_boundary_bits(self):
        """Bits at byte boundaries and the final partial byte behave correctly."""
        bits = BitArray(17)
        for index in (0, 7, 8, 15, 16):
            bits.set(index)
            assert bits.test(index)
        assert bits.count() == 5

    def test_set_is_idempotent(self):
        bits = BitArray(32)
        bits.set(5)
        bits.set(5)
        assert bits.count() == 1


class TestBulkOperations:
    def test_set_all_and_test_all(self):
        bits = BitArray(50)
        bits.set_all([1, 2, 3])
        assert bits.test_all([1, 2, 3])
        assert not bits.test_all([1, 2, 4])

    def test_count_and_fill_ratio(self):
        bits = BitArray(10)
        bits.set_all(range(5))
        assert bits.count() == 5
        assert bits.fill_ratio() == pytest.approx(0.5)

    def test_reset(self):
        bits = BitArray(40)
        bits.set_all(range(0, 40, 3))
        bits.reset()
        assert bits.count() == 0

    def test_iter_set_bits(self):
        bits = BitArray(30)
        indices = [0, 7, 8, 13, 29]
        bits.set_all(indices)
        assert list(bits.iter_set_bits()) == indices

    def test_copy_is_independent(self):
        bits = BitArray(16)
        bits.set(3)
        clone = bits.copy()
        clone.set(4)
        assert not bits.test(4)
        assert clone.test(3)


class TestSerialization:
    def test_round_trip(self):
        bits = BitArray(19)
        bits.set_all([0, 5, 18])
        restored = BitArray.from_bytes(19, bits.to_bytes())
        assert restored == bits

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            BitArray.from_bytes(19, b"\x00")

    def test_size_in_bytes(self):
        assert BitArray(8).size_in_bytes() == 1
        assert BitArray(9).size_in_bytes() == 2
        assert BitArray(64).size_in_bytes() == 8

    def test_equality(self):
        a = BitArray(8)
        b = BitArray(8)
        assert a == b
        b.set(1)
        assert a != b
        assert a != "not a bitarray"


class TestBufferView:
    def test_view_aliases_the_buffer(self):
        bits = BitArray(19)
        bits.set_all([0, 5, 18])
        backing = bytearray(bits.to_bytes())
        view = BitArray.view(19, backing)
        assert view == bits
        assert view.test(5)
        backing[0] = 0  # clear the low byte out from under the view
        assert not view.test(0)
        assert not view.test(5)
        assert view.test(18)

    def test_view_over_readonly_buffer_rejects_mutation(self):
        bits = BitArray(9)
        bits.set(3)
        view = BitArray.view(9, bits.to_bytes())
        assert not view.writable
        assert view.test(3)
        with pytest.raises((TypeError, ValueError)):
            view.set(1)

    def test_writable_view_mutates_the_buffer(self):
        backing = bytearray(2)
        view = BitArray.view(16, backing)
        assert view.writable
        view.set(0)
        assert backing[0] != 0  # the buffer saw the write

    def test_view_validates_sizes(self):
        with pytest.raises(ConfigurationError):
            BitArray.view(0, b"")
        with pytest.raises(ConfigurationError):
            BitArray.view(19, b"\x00")

    def test_view_round_trips_and_copies_detach(self):
        backing = bytearray(BitArray(24).to_bytes())
        view = BitArray.view(24, backing)
        clone = view.copy()
        assert clone.writable  # copies own their bytes
        clone.set(7)
        assert backing[0] == 0  # ...so the backing buffer is untouched
        assert BitArray.from_bytes(24, view.to_bytes()) == view
