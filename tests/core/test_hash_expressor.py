"""Unit tests for the HashExpressor."""

from __future__ import annotations

import pytest

from repro.core.hash_expressor import HashExpressor
from repro.errors import ConfigurationError
from repro.hashing.registry import GLOBAL_HASH_FAMILY


def make_expressor(num_cells=256, cell_hash_bits=5) -> HashExpressor:
    return HashExpressor(
        num_cells=num_cells, cell_hash_bits=cell_hash_bits, family=GLOBAL_HASH_FAMILY
    )


class TestConstruction:
    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            make_expressor(num_cells=0)
        with pytest.raises(ConfigurationError):
            HashExpressor(num_cells=10, cell_hash_bits=0, family=GLOBAL_HASH_FAMILY)

    def test_initial_state(self):
        expressor = make_expressor(num_cells=16)
        stats = expressor.stats()
        assert stats.num_cells == 16
        assert stats.occupied_cells == 0
        assert stats.inserted_keys == 0
        assert stats.load_factor == 0.0
        assert all(expressor.is_empty_cell(i) for i in range(16))

    def test_size_accounting(self):
        expressor = make_expressor(num_cells=100, cell_hash_bits=4)
        assert expressor.size_in_bits() == 100 * 5
        assert expressor.cell_hash_bits == 4
        assert expressor.max_storable_index == 15


class TestStorable:
    def test_small_cells_limit_indexes(self):
        expressor = make_expressor(cell_hash_bits=3)
        assert expressor.storable([0, 1, 6])
        assert not expressor.storable([0, 1, 7])  # 7 == 2**3 - 1 is reserved for "empty"

    def test_insert_rejects_unstorable_selection(self):
        expressor = make_expressor(cell_hash_bits=3)
        assert expressor.try_insert("key", [0, 1, 7]) is False
        assert expressor.stats().inserted_keys == 0


class TestInsertAndQuery:
    def test_round_trip_single_key(self):
        expressor = make_expressor()
        selection = [4, 9, 14]
        assert expressor.try_insert("element", selection)
        retrieved = expressor.query("element", k=3)
        assert retrieved is not None
        assert sorted(retrieved) == sorted(selection)

    def test_round_trip_many_keys(self):
        expressor = make_expressor(num_cells=2048)
        inserted = {}
        for i in range(120):
            key = f"adjusted-{i}"
            selection = [(i % 10), 10 + (i % 6), 17 + (i % 4)]
            if expressor.try_insert(key, selection):
                inserted[key] = selection
        # With 2048 cells and ~360 occupied entries most insertions succeed.
        assert len(inserted) >= 100
        for key, selection in inserted.items():
            retrieved = expressor.query(key, k=3)
            assert retrieved is not None, f"zero-FNR violated for {key}"
            assert sorted(retrieved) == sorted(selection)

    def test_duplicate_selection_rejected(self):
        expressor = make_expressor()
        with pytest.raises(ConfigurationError):
            expressor.try_insert("key", [1, 1, 2])

    def test_query_unknown_key_usually_returns_none(self):
        expressor = make_expressor(num_cells=512)
        for i in range(30):
            expressor.try_insert(f"known-{i}", [i % 8, 8 + i % 8, 16 + i % 6])
        spurious = sum(
            1 for i in range(500) if expressor.query(f"unknown-{i}", k=3) is not None
        )
        # HashExpressor has a small FPR; it must stay small at this load.
        assert spurious < 50

    def test_query_empty_expressor_returns_none(self):
        expressor = make_expressor()
        assert expressor.query("anything", k=3) is None

    def test_query_k_validation(self):
        expressor = make_expressor()
        with pytest.raises(ConfigurationError):
            expressor.query("key", k=0)

    def test_can_insert_does_not_commit(self):
        expressor = make_expressor()
        assert expressor.can_insert("key", [1, 2, 3])
        assert expressor.stats().occupied_cells == 0
        assert expressor.query("key", k=3) is None

    def test_failed_insert_leaves_table_unchanged(self):
        expressor = make_expressor(num_cells=4, cell_hash_bits=5)
        # Fill the tiny table until an insertion fails, then verify the failed
        # attempt did not modify any cell.
        results = []
        for i in range(20):
            before = [expressor.cell(j) for j in range(4)]
            ok = expressor.try_insert(f"key-{i}", [i % 20, (i + 3) % 20, (i + 7) % 20])
            after = [expressor.cell(j) for j in range(4)]
            results.append(ok)
            if not ok:
                assert before == after
        assert not all(results), "expected at least one failure on a 4-cell table"

    def test_inserted_keys_counter(self):
        expressor = make_expressor(num_cells=1024)
        successes = 0
        for i in range(20):
            if expressor.try_insert(f"k{i}", [i % 5, 5 + i % 5, 10 + i % 5]):
                successes += 1
        assert expressor.stats().inserted_keys == successes
        assert expressor.inserted_keys == successes
