"""Scalar-vs-batch equivalence for *construction*, pinned at the byte level.

The bulk-build contract mirrors the query-side one: building a filter
through the engine (``add_many`` / the vectorized TPJO and peeling passes)
must leave it in exactly the state the scalar build loop would — the same
serialized codec frame, byte for byte, and the same frame again when the
whole build runs on the numpy-absent fallback.  Anything less would mean a
filter's stored bits depend on which machine built it.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.baselines.learned.adabf import AdaptiveLearnedBloomFilter
from repro.baselines.learned.lbf import LearnedBloomFilter
from repro.baselines.learned.slbf import SandwichedLearnedBloomFilter
from repro.baselines.weighted_bloom import WeightedBloomFilter
from repro.baselines.xor_filter import XorFilter
from repro.core.bloom import BloomFilter
from repro.core.habf import HABF, FastHABF
from repro.core.params import HABFParams
from repro.hashing import vectorized
from repro.hashing.double_hashing import DoubleHashFamily
from repro.service import codec


def _params(dataset) -> HABFParams:
    return HABFParams.from_bits_per_key(10.0, dataset.num_positives, seed=5)


#: Builders that produce codec-serializable filters; frames are compared.
CODEC_BUILDERS = {
    "bloom": lambda ds, costs: BloomFilter.from_keys(
        ds.positives, num_bits=10 * ds.num_positives, num_hashes=7
    ),
    "bloom-double": lambda ds, costs: BloomFilter.from_keys(
        ds.positives,
        num_bits=10 * ds.num_positives,
        num_hashes=7,
        family=DoubleHashFamily(size=7, primitive="xxhash", seed=2),
    ),
    "habf": lambda ds, costs: HABF.build(
        ds.positives, ds.negatives, costs=costs, params=_params(ds)
    ),
    "f-habf": lambda ds, costs: FastHABF.build(
        ds.positives, ds.negatives, costs=costs, params=_params(ds)
    ),
    "habf-degenerate": lambda ds, costs: HABF.build(
        ds.positives,
        negatives=(),
        params=HABFParams(total_bits=10 * ds.num_positives, k=3, delta=0.0),
    ),
    "xor": lambda ds, costs: XorFilter.from_bits_per_key(ds.positives, 10.0),
}

#: Builders whose filters are not codec-serializable; the underlying bit
#: payloads are compared instead.
PAYLOAD_BUILDERS = {
    "wbf": (
        lambda ds, costs: WeightedBloomFilter.build(
            ds.positives, ds.negatives, costs=costs, bits_per_key=10.0
        ),
        lambda f: [f._bits.to_bytes()],
    ),
    "lbf": (
        lambda ds, costs: LearnedBloomFilter.build(
            ds.positives, ds.negatives, bits_per_key=12.0
        ),
        lambda f: [f.backup.bits.to_bytes() if f.backup else b""],
    ),
    "slbf": (
        lambda ds, costs: SandwichedLearnedBloomFilter.build(
            ds.positives, ds.negatives, bits_per_key=12.0
        ),
        lambda f: [
            f.initial.bits.to_bytes() if f.initial else b"",
            f.backup.bits.to_bytes() if f.backup else b"",
        ],
    ),
    "ada-bf": (
        lambda ds, costs: AdaptiveLearnedBloomFilter.build(
            ds.positives, ds.negatives, bits_per_key=12.0
        ),
        lambda f: [f._bloom.bits.to_bytes()],
    ),
}


def _build_without_numpy(build, dataset, costs):
    """Run a full construction on the pure-Python fallback paths."""
    with vectorized.force_scalar():
        return build(dataset, costs)


@pytest.mark.parametrize("name", list(CODEC_BUILDERS))
def test_batch_build_codec_frames_match_scalar(name, small_shalla, skewed_costs):
    build = CODEC_BUILDERS[name]
    engine_frame = codec.dumps(build(small_shalla, skewed_costs))
    fallback_frame = codec.dumps(
        _build_without_numpy(build, small_shalla, skewed_costs)
    )
    assert engine_frame == fallback_frame, name


@pytest.mark.parametrize("name", list(PAYLOAD_BUILDERS))
def test_batch_build_bit_payloads_match_scalar(name, small_shalla, skewed_costs):
    build, payload = PAYLOAD_BUILDERS[name]
    engine_payload = payload(build(small_shalla, skewed_costs))
    fallback_payload = payload(
        _build_without_numpy(build, small_shalla, skewed_costs)
    )
    assert engine_payload == fallback_payload, name


def test_add_many_matches_add_loop_and_counts(small_shalla):
    """add_many == looped add, including item accounting and codec bytes."""
    keys = small_shalla.positives
    batched = BloomFilter(num_bits=10 * len(keys), num_hashes=7)
    batched.add_many(keys)
    scalar = BloomFilter(num_bits=10 * len(keys), num_hashes=7)
    for key in keys:
        scalar.add(key)
    assert batched.num_items == scalar.num_items == len(keys)
    assert codec.dumps(batched) == codec.dumps(scalar)


def test_add_many_fallback_without_numpy(small_shalla, monkeypatch):
    keys = small_shalla.positives[:200]
    engine = BloomFilter(num_bits=4096, num_hashes=5)
    engine.add_many(keys)
    monkeypatch.setattr(vectorized, "np", None)
    fallback = BloomFilter(num_bits=4096, num_hashes=5)
    fallback.add_many(keys)
    assert fallback.bits.to_bytes() == engine.bits.to_bytes()
    assert fallback.num_items == engine.num_items


def test_add_many_with_selection_matches_scalar(small_shalla):
    keys = small_shalla.positives[:300]
    selection = [4, 9, 17]
    batched = BloomFilter(num_bits=8192, num_hashes=3, selection=selection)
    batched.add_many_with_selection(keys, selection)
    scalar = BloomFilter(num_bits=8192, num_hashes=3, selection=selection)
    for key in keys:
        scalar.add_with_selection(key, selection)
    assert batched.bits.to_bytes() == scalar.bits.to_bytes()
    assert batched.num_items == scalar.num_items


def test_add_many_on_build_once_filter_raises(small_shalla):
    """Static filters reject bulk inserts loudly instead of AttributeError."""
    from repro.errors import ConstructionError

    xor = XorFilter.from_bits_per_key(small_shalla.positives[:100], 10.0)
    with pytest.raises(ConstructionError, match="incremental insertion"):
        xor.add_many(["new-key"])
    xor.add_many([])  # an empty bulk insert is a harmless no-op


def test_from_keys_derives_consistent_parameters():
    bloom = BloomFilter.from_keys(["a", "b", "c", "d"], bits_per_key=16.0)
    assert bloom.num_bits == 64
    assert bloom.num_items == 4
    assert all(bloom.contains_many(["a", "b", "c", "d"]))


def test_habf_construction_stats_identical_on_both_paths(small_shalla, skewed_costs):
    """The TPJO trajectory (not just the final bits) must not depend on numpy."""
    params = _params(small_shalla)
    engine = HABF.build(
        small_shalla.positives, small_shalla.negatives, costs=skewed_costs, params=params
    )
    fallback = _build_without_numpy(
        lambda ds, costs: HABF.build(
            ds.positives, ds.negatives, costs=costs, params=params
        ),
        small_shalla,
        skewed_costs,
    )
    assert engine.construction_stats == fallback.construction_stats
