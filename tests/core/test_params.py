"""Unit tests for HABFParams and SpaceBudget."""

from __future__ import annotations

import pytest

from repro.core.params import HABFParams, SpaceBudget
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_are_the_papers_optima(self):
        params = HABFParams(total_bits=10_000)
        assert params.k == 3
        assert params.delta == 0.25
        assert params.cell_hash_bits == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_bits": 0},
            {"total_bits": -1},
            {"total_bits": 100, "k": 0},
            {"total_bits": 100, "delta": -0.1},
            {"total_bits": 100, "delta": 1.0},
            {"total_bits": 100, "cell_hash_bits": 0},
            {"total_bits": 100, "cell_hash_bits": 17},
            {"total_bits": 100, "max_queue_passes": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            HABFParams(**kwargs)


class TestDerivedQuantities:
    def test_space_split(self):
        params = HABFParams(total_bits=1000, delta=0.25)
        assert params.expressor_bits == 250
        assert params.bloom_bits == 750
        assert params.expressor_bits + params.bloom_bits == 1000

    def test_zero_delta_means_no_expressor(self):
        params = HABFParams(total_bits=1000, delta=0.0)
        assert params.expressor_bits == 0
        assert params.num_cells == 0
        assert params.bloom_bits == 1000

    def test_cell_accounting(self):
        params = HABFParams(total_bits=1000, delta=0.25, cell_hash_bits=4)
        assert params.cell_bits == 5
        assert params.num_cells == 250 // 5
        assert params.max_hash_functions == 15

    def test_bits_per_key(self):
        params = HABFParams(total_bits=1000)
        assert params.bits_per_key(100) == pytest.approx(10.0)
        with pytest.raises(ConfigurationError):
            params.bits_per_key(0)

    def test_with_total_bits_preserves_other_fields(self):
        params = HABFParams(total_bits=1000, k=5, delta=0.3, cell_hash_bits=3)
        resized = params.with_total_bits(2000)
        assert resized.total_bits == 2000
        assert resized.k == 5
        assert resized.delta == 0.3
        assert resized.cell_hash_bits == 3

    def test_from_bits_per_key(self):
        params = HABFParams.from_bits_per_key(8.0, 500)
        assert params.total_bits == 4000
        with pytest.raises(ConfigurationError):
            HABFParams.from_bits_per_key(0.0, 500)
        with pytest.raises(ConfigurationError):
            HABFParams.from_bits_per_key(8.0, 0)


class TestSpaceBudget:
    def test_bits_conversion(self):
        budget = SpaceBudget(megabytes=1.0)
        assert budget.bits == 8 * 1024 * 1024

    def test_scale(self):
        scaled = SpaceBudget(megabytes=2.0, scale=0.5)
        assert scaled.bits == 8 * 1024 * 1024

    def test_params_passthrough(self):
        params = SpaceBudget(megabytes=0.001).params(k=4, delta=0.2)
        assert params.k == 4
        assert params.delta == 0.2
        assert params.total_bits == SpaceBudget(megabytes=0.001).bits

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            SpaceBudget(megabytes=0)
        with pytest.raises(ConfigurationError):
            SpaceBudget(megabytes=1, scale=0)
