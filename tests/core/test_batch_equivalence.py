"""Scalar-vs-batch equivalence for every filter type in the library.

The contract of the batch-membership engine is exactly one sentence:
``filter.contains_many(keys) == [filter.contains(k) for k in keys]`` for
every filter, on the numpy engine path *and* on the pure-Python fallback
(simulated by monkeypatching the engine's numpy handle away).  These tests
pin that contract for the core filters, every baseline, the degenerate
shard/table filters and the sharded store, plus the serialization invariant
that engine-built and fallback-built answers come from byte-identical codec
frames.
"""

from __future__ import annotations

import random

import pytest

pytest.importorskip("numpy")

from repro.baselines.learned.adabf import AdaptiveLearnedBloomFilter
from repro.baselines.learned.lbf import LearnedBloomFilter
from repro.baselines.learned.slbf import SandwichedLearnedBloomFilter
from repro.baselines.weighted_bloom import WeightedBloomFilter
from repro.baselines.xor_filter import XorFilter
from repro.core.bitarray import BitArray
from repro.core.bloom import BloomFilter
from repro.core.habf import HABF, FastHABF
from repro.core.params import HABFParams
from repro.hashing import vectorized
from repro.hashing.double_hashing import DoubleHashFamily
from repro.kvstore.filter_policy import AlwaysContainsFilter
from repro.service import codec
from repro.service.shards import EmptyShardFilter, ShardedFilterStore


def _params(dataset) -> HABFParams:
    return HABFParams.from_bits_per_key(10.0, dataset.num_positives, seed=5)


FILTER_BUILDERS = {
    "bloom": lambda ds, costs: _built_bloom(ds, family=None),
    "bloom-double": lambda ds, costs: _built_bloom(
        ds, family=DoubleHashFamily(size=7, primitive="xxhash", seed=2)
    ),
    "habf": lambda ds, costs: HABF.build(
        ds.positives, ds.negatives, costs=costs, params=_params(ds)
    ),
    "f-habf": lambda ds, costs: FastHABF.build(
        ds.positives, ds.negatives, costs=costs, params=_params(ds)
    ),
    "habf-no-expressor": lambda ds, costs: HABF.build(
        ds.positives,
        negatives=(),
        params=HABFParams(total_bits=10 * ds.num_positives, k=3, delta=0.0),
    ),
    "xor": lambda ds, costs: XorFilter.from_bits_per_key(ds.positives, 10.0),
    "wbf": lambda ds, costs: WeightedBloomFilter.build(
        ds.positives, ds.negatives, costs=costs, bits_per_key=10.0
    ),
    "lbf": lambda ds, costs: LearnedBloomFilter.build(
        ds.positives, ds.negatives, bits_per_key=12.0
    ),
    "slbf": lambda ds, costs: SandwichedLearnedBloomFilter.build(
        ds.positives, ds.negatives, bits_per_key=12.0
    ),
    "ada-bf": lambda ds, costs: AdaptiveLearnedBloomFilter.build(
        ds.positives, ds.negatives, bits_per_key=12.0
    ),
    "empty-shard": lambda ds, costs: EmptyShardFilter(),
    "always-contains": lambda ds, costs: AlwaysContainsFilter(),
}


def _built_bloom(dataset, family):
    bloom = BloomFilter(num_bits=10 * dataset.num_positives, num_hashes=7, family=family)
    bloom.add_all(dataset.positives)
    return bloom


@pytest.fixture(scope="module")
def probe_keys(small_shalla):
    keys = small_shalla.negatives[:400] + small_shalla.positives[:400]
    random.Random(9).shuffle(keys)
    return keys


@pytest.fixture(scope="module")
def built_filters(small_shalla, skewed_costs):
    return {
        name: build(small_shalla, skewed_costs)
        for name, build in FILTER_BUILDERS.items()
    }


@pytest.mark.parametrize("name", list(FILTER_BUILDERS))
def test_contains_many_matches_scalar(name, built_filters, probe_keys):
    filt = built_filters[name]
    answers = filt.contains_many(probe_keys)
    assert answers == [filt.contains(key) for key in probe_keys]
    assert all(isinstance(answer, bool) for answer in answers)


@pytest.mark.parametrize("name", list(FILTER_BUILDERS))
def test_contains_many_fallback_without_numpy(name, built_filters, probe_keys, monkeypatch):
    filt = built_filters[name]
    engine_answers = filt.contains_many(probe_keys)
    monkeypatch.setattr(vectorized, "np", None)
    assert filt.contains_many(probe_keys) == engine_answers


def test_contains_many_empty_batch(built_filters):
    for name, filt in built_filters.items():
        assert filt.contains_many([]) == [], name


def test_zero_false_negatives_through_engine(built_filters, small_shalla):
    for name in ("bloom", "habf", "f-habf", "xor", "wbf", "lbf", "slbf"):
        answers = built_filters[name].contains_many(small_shalla.positives)
        assert all(answers), f"{name} dropped a positive key on the batch path"


def test_sharded_store_query_many_matches_scalar(small_shalla, probe_keys):
    batch_store = ShardedFilterStore.build(
        small_shalla.positives, small_shalla.negatives, num_shards=4, backend="f-habf"
    )
    scalar_store = ShardedFilterStore.build(
        small_shalla.positives, small_shalla.negatives, num_shards=4, backend="f-habf"
    )
    assert batch_store.query_many(probe_keys) == [
        scalar_store.query(key) for key in probe_keys
    ]
    batch_stats = {s.shard: (s.queries, s.positives) for s in batch_store.shard_stats()}
    scalar_stats = {s.shard: (s.queries, s.positives) for s in scalar_store.shard_stats()}
    assert batch_stats == scalar_stats


def test_sharded_store_fallback_without_numpy(small_shalla, probe_keys, monkeypatch):
    store = ShardedFilterStore.build(
        small_shalla.positives, small_shalla.negatives, num_shards=3, backend="bloom"
    )
    engine_answers = store.query_many(probe_keys)
    monkeypatch.setattr(vectorized, "np", None)
    assert store.query_many(probe_keys) == engine_answers


def test_codec_frames_identical_on_both_paths(built_filters, monkeypatch):
    """Engine availability must not change a single serialized byte."""
    for name in ("bloom", "bloom-double", "habf", "f-habf", "xor"):
        filt = built_filters[name]
        engine_frame = codec.dumps(filt)
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(vectorized, "np", None)
            fallback_frame = codec.dumps(filt)
        assert engine_frame == fallback_frame, name
        revived = codec.loads(engine_frame)
        probe = [f"codec-probe-{i}" for i in range(64)]
        assert revived.contains_many(probe) == filt.contains_many(probe), name


def test_bitarray_set_many_matches_scalar_and_serialization():
    rng = random.Random(5)
    indices = [rng.randrange(997) for _ in range(300)] + [-1, -997, 0, 996]
    scalar = BitArray(997)
    for index in indices:
        scalar.set(index)
    batched = BitArray(997)
    batched.set_many(indices)
    assert batched == scalar
    assert batched.to_bytes() == scalar.to_bytes()
    tested = batched.test_many(list(range(997)))
    assert tested.tolist() == [scalar.test(i) for i in range(997)]


def test_bitarray_set_many_fallback_without_numpy(monkeypatch):
    monkeypatch.setattr(vectorized, "np", None)
    array = BitArray(100)
    array.set_many([1, 5, 99, -1])
    assert array.test_many([1, 5, 99, -1, 0]) == [True, True, True, True, False]
    assert sorted(array.iter_set_bits()) == [1, 5, 99]


def test_bitarray_batch_bounds_checking():
    array = BitArray(64)
    with pytest.raises(IndexError):
        array.set_many([0, 64])
    with pytest.raises(IndexError):
        array.test_many([-65])
    # The failed call must not have set anything.
    assert array.count() == 0
