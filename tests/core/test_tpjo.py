"""Unit tests for the TPJO optimizer."""

from __future__ import annotations

import pytest

from repro.core.bloom import BloomFilter
from repro.core.hash_expressor import HashExpressor
from repro.core.params import HABFParams
from repro.core.tpjo import TPJOOptimizer
from repro.hashing.registry import GLOBAL_HASH_FAMILY


def build_components(num_positives=800, bits_per_key=8.0, k=3, seed=3):
    params = HABFParams.from_bits_per_key(bits_per_key, num_positives, k=k, seed=seed)
    bloom = BloomFilter(num_bits=params.bloom_bits, num_hashes=k)
    expressor = HashExpressor(
        num_cells=params.num_cells,
        cell_hash_bits=params.cell_hash_bits,
        family=GLOBAL_HASH_FAMILY,
    )
    return params, bloom, expressor


def make_keys(prefix, count):
    return [f"{prefix}-{i}" for i in range(count)]


class TestOptimization:
    def test_reduces_false_positives(self):
        positives = make_keys("pos", 800)
        negatives = make_keys("neg", 800)
        params, bloom, expressor = build_components()
        optimizer = TPJOOptimizer(bloom, expressor, params)
        stats = optimizer.optimize(positives, negatives)

        remaining = sum(1 for key in negatives if bloom.contains(key))
        assert stats.initial_collisions > 0
        assert stats.optimized > 0
        assert remaining <= stats.initial_collisions
        assert stats.optimized + stats.failed >= stats.initial_collisions

    def test_zero_fnr_through_selections(self):
        """Every positive key must still hit under its final hash selection."""
        positives = make_keys("pos", 500)
        negatives = make_keys("neg", 500)
        params, bloom, expressor = build_components(num_positives=500)
        optimizer = TPJOOptimizer(bloom, expressor, params)
        optimizer.optimize(positives, negatives)
        for key in positives:
            selection = optimizer.selection_for(key)
            assert bloom.contains_with_selection(key, selection)

    def test_adjusted_keys_are_retrievable_from_expressor(self):
        positives = make_keys("pos", 600)
        negatives = make_keys("neg", 600)
        params, bloom, expressor = build_components(num_positives=600)
        optimizer = TPJOOptimizer(bloom, expressor, params)
        optimizer.optimize(positives, negatives)
        for key in optimizer.adjusted_keys:
            retrieved = expressor.query(key, params.k)
            assert retrieved is not None
            assert sorted(retrieved) == sorted(optimizer.selection_for(key))

    def test_costs_prioritise_expensive_negatives(self):
        """High-cost collision keys should be resolved preferentially."""
        positives = make_keys("pos", 1500)
        negatives = make_keys("neg", 1500)
        # Tight space so that plenty of collisions exist and some must fail.
        params, bloom, expressor = build_components(num_positives=1500, bits_per_key=5.0)
        costs = {key: (1000.0 if i % 10 == 0 else 0.1) for i, key in enumerate(negatives)}
        optimizer = TPJOOptimizer(bloom, expressor, params)
        optimizer.optimize(positives, negatives, costs)

        expensive_fp = sum(
            costs[key]
            for key in negatives
            if costs[key] > 1.0 and bloom.contains(key)
        )
        cheap_fp_count = sum(
            1 for key in negatives if costs[key] <= 1.0 and bloom.contains(key)
        )
        total_expensive = sum(cost for cost in costs.values() if cost > 1.0)
        # The expensive slice of the cost mass should be almost fully protected.
        assert expensive_fp / total_expensive < 0.02
        assert cheap_fp_count >= 0  # cheap keys may remain false positives

    def test_no_negatives_is_a_noop(self):
        positives = make_keys("pos", 200)
        params, bloom, expressor = build_components(num_positives=200)
        optimizer = TPJOOptimizer(bloom, expressor, params)
        stats = optimizer.optimize(positives, [])
        assert stats.initial_collisions == 0
        assert stats.optimized == 0
        assert all(bloom.contains(key) for key in positives)

    def test_gamma_disabled_still_works(self):
        positives = make_keys("pos", 600)
        negatives = make_keys("neg", 600)
        params, bloom, expressor = build_components(num_positives=600)
        optimizer = TPJOOptimizer(bloom, expressor, params, use_gamma=False)
        stats = optimizer.optimize(positives, negatives)
        assert stats.optimized > 0
        for key in positives:
            assert bloom.contains_with_selection(key, optimizer.selection_for(key))

    def test_selection_for_unadjusted_key_is_h0(self):
        positives = make_keys("pos", 100)
        params, bloom, expressor = build_components(num_positives=100)
        optimizer = TPJOOptimizer(bloom, expressor, params)
        optimizer.optimize(positives, make_keys("neg", 100))
        unadjusted = [key for key in positives if key not in optimizer.adjusted_keys]
        assert unadjusted, "at this density some keys must remain unadjusted"
        assert optimizer.selection_for(unadjusted[0]) == bloom.initial_selection

    def test_stats_counts_are_consistent(self):
        positives = make_keys("pos", 700)
        negatives = make_keys("neg", 700)
        params, bloom, expressor = build_components(num_positives=700)
        optimizer = TPJOOptimizer(bloom, expressor, params)
        stats = optimizer.optimize(positives, negatives)
        assert stats.num_positive == 700
        assert stats.num_negative == 700
        assert stats.queue_passes >= stats.initial_collisions
        assert stats.adjusted_positive_keys == len(optimizer.adjusted_keys)
        assert expressor.inserted_keys == stats.adjusted_positive_keys
