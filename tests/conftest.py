"""Shared fixtures for the test suite: small deterministic datasets and params."""

from __future__ import annotations

import random

import pytest

from repro.core.params import HABFParams
from repro.workloads.dataset import MembershipDataset
from repro.workloads.shalla import generate_shalla_like
from repro.workloads.ycsb import generate_ycsb_like
from repro.workloads.zipf import assign_zipf_costs


@pytest.fixture(scope="session")
def small_shalla() -> MembershipDataset:
    """A small Shalla-like dataset reused across tests (session-scoped, read-only)."""
    return generate_shalla_like(num_positives=1200, num_negatives=1200, seed=101)


@pytest.fixture(scope="session")
def small_ycsb() -> MembershipDataset:
    """A small YCSB-like dataset reused across tests (session-scoped, read-only)."""
    return generate_ycsb_like(num_positives=1200, num_negatives=1100, seed=101)


@pytest.fixture(scope="session")
def skewed_costs(small_shalla) -> dict:
    """Zipf(1.0) costs over the small Shalla negatives."""
    return assign_zipf_costs(small_shalla.negatives, skewness=1.0, seed=101)


@pytest.fixture()
def default_params(small_shalla) -> HABFParams:
    """Default HABF parameters at 10 bits per key for the small Shalla dataset."""
    return HABFParams.from_bits_per_key(10.0, small_shalla.num_positives, seed=5)


@pytest.fixture()
def tiny_keys() -> list:
    """A handful of string keys for unit tests that do not need a dataset."""
    rng = random.Random(7)
    return [f"key-{rng.randrange(10**9)}-{i}" for i in range(64)]
