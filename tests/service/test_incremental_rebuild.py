"""Parallel shard builds and incremental (dirty-shard-only) rebuilds."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service import codec
from repro.service.backends import get_backend
from repro.service.server import MembershipService
from repro.service.shards import ShardRouter, ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like

NUM_SHARDS = 8


@pytest.fixture(scope="module")
def dataset():
    return generate_shalla_like(num_positives=1600, num_negatives=900, seed=59)


def _key_for_shard(router: ShardRouter, shard: int, tag: str) -> str:
    """A fresh key that routes to ``shard`` (probed deterministically)."""
    for attempt in range(100_000):
        key = f"{tag}-{attempt}"
        if router.shard_of(key) == shard:
            return key
    raise AssertionError("no key found for shard")  # pragma: no cover


# --------------------------------------------------------------------- #
# Parallel builds
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("worker_mode", ["process", "thread"])
def test_parallel_build_is_bit_identical_to_sequential(dataset, worker_mode):
    sequential = ShardedFilterStore.build(
        dataset.positives,
        negatives=dataset.negatives,
        num_shards=NUM_SHARDS,
        backend="habf",
    )
    parallel = ShardedFilterStore.build(
        dataset.positives,
        negatives=dataset.negatives,
        num_shards=NUM_SHARDS,
        backend="habf",
        workers=4,
        worker_mode=worker_mode,
    )
    assert codec.dumps(parallel) == codec.dumps(sequential)


def test_parallel_build_with_empty_shards():
    store = ShardedFilterStore.build(
        ["a", "b", "c"], num_shards=16, backend="bloom", workers=4
    )
    assert all(store.query_many(["a", "b", "c"]))
    assert store.num_keys() == 3


def test_process_workers_reject_policy_instances(dataset):
    policy = get_backend("bloom", bits_per_key=10.0)
    with pytest.raises(ConfigurationError, match="worker_mode='thread'"):
        ShardedFilterStore.build(
            dataset.positives,
            num_shards=4,
            backend=policy,
            workers=2,
            worker_mode="process",
        )
    # Thread mode handles instances fine (no pickling, shared policy object).
    store = ShardedFilterStore.build(
        dataset.positives, num_shards=4, backend=policy, workers=2, worker_mode="thread"
    )
    assert all(store.query_many(dataset.positives[:100]))


def test_unknown_worker_mode_rejected(dataset):
    with pytest.raises(ConfigurationError, match="worker_mode"):
        ShardedFilterStore.build(
            dataset.positives, num_shards=4, backend="bloom", workers=2, worker_mode="mpi"
        )


# --------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------- #
def test_fingerprints_are_order_independent_and_key_sensitive(dataset):
    forward = ShardedFilterStore.build(dataset.positives, num_shards=4, backend="bloom")
    reversed_build = ShardedFilterStore.build(
        list(reversed(dataset.positives)), num_shards=4, backend="bloom"
    )
    assert forward.shard_fingerprints == reversed_build.shard_fingerprints
    changed = ShardedFilterStore.build(
        dataset.positives[:-1] + ["something-new"], num_shards=4, backend="bloom"
    )
    assert forward.shard_fingerprints != changed.shard_fingerprints


def test_partition_engine_path_matches_scalar(dataset):
    """Fingerprints and placement must be identical with and without numpy.

    A snapshot written on a numpy machine must diff cleanly against a
    rebuild on a numpy-less one (and vice versa); any drift between the
    vectorized and scalar partition passes would silently dirty — or worse,
    silently skip — shards.
    """
    from repro.hashing import vectorized as vec

    router = ShardRouter(6, seed=3)
    keys = dataset.positives[:500]
    negatives = dataset.negatives[:300]
    engine = ShardedFilterStore._partition(router, keys, negatives, None)
    with vec.force_scalar():
        scalar = ShardedFilterStore._partition(router, keys, negatives, None)
    assert engine[0] == scalar[0]  # per-shard keys, in arrival order
    assert engine[1] == scalar[1]  # per-shard negatives
    assert engine[3] == scalar[3]  # fingerprints


def test_fingerprints_survive_the_codec(dataset):
    store = ShardedFilterStore.build(dataset.positives, num_shards=4, backend="bloom")
    revived = codec.loads(codec.dumps(store))
    assert revived.shard_fingerprints == store.shard_fingerprints
    assert revived.shard_generations == store.shard_generations


# --------------------------------------------------------------------- #
# Incremental rebuilds through the store
# --------------------------------------------------------------------- #
def test_rebuild_from_shares_clean_shard_filters(dataset):
    previous = ShardedFilterStore.build(
        dataset.positives, num_shards=NUM_SHARDS, backend="bloom"
    )
    victim = dataset.positives[0]
    shard = previous.shard_of(victim)
    keys = [key for key in dataset.positives if key != victim]
    store, rebuilt, skipped = ShardedFilterStore.rebuild_from(
        previous, keys, backend="bloom"
    )
    assert rebuilt == [shard]
    assert sorted(rebuilt + skipped) == list(range(NUM_SHARDS))
    for index in range(NUM_SHARDS):
        if index == shard:
            assert store.filters[index] is not previous.filters[index]
            assert store.shard_generations[index] == 2
        else:
            assert store.filters[index] is previous.filters[index]
            assert store.shard_generations[index] == 1
    assert all(store.query_many(keys))


def test_rebuild_from_treats_unknown_fingerprints_as_dirty(dataset):
    previous = ShardedFilterStore.build(dataset.positives, num_shards=4, backend="bloom")
    stripped = ShardedFilterStore.from_parts(
        filters=previous.filters,
        router_seed=previous.router_seed,
        backend_name=previous.backend_name,
        shard_key_counts=previous.shard_key_counts,
    )
    store, rebuilt, skipped = ShardedFilterStore.rebuild_from(
        stripped, dataset.positives, backend="bloom"
    )
    assert rebuilt == [0, 1, 2, 3] and skipped == []
    assert store.shard_fingerprints == previous.shard_fingerprints


def test_changed_keys_hint_forces_clean_shards(dataset):
    previous = ShardedFilterStore.build(
        dataset.positives, num_shards=NUM_SHARDS, backend="bloom"
    )
    hint = dataset.positives[5]
    store, rebuilt, _ = ShardedFilterStore.rebuild_from(
        previous, dataset.positives, backend="bloom", changed_keys=[hint]
    )
    assert rebuilt == [previous.shard_of(hint)]
    assert store.shard_generations[previous.shard_of(hint)] == 2


# --------------------------------------------------------------------- #
# Incremental rebuilds through the service
# --------------------------------------------------------------------- #
def test_service_rebuild_skips_clean_shards_and_reports_it(dataset):
    service = MembershipService(backend="bloom", num_shards=NUM_SHARDS, bits_per_key=10.0)
    service.load(dataset.positives)
    router = ShardRouter(NUM_SHARDS, seed=0)
    fresh = _key_for_shard(router, 3, "fresh-key")
    generation = service.rebuild(dataset.positives + [fresh])
    assert generation == 2
    stats = service.stats()
    assert stats.rebuilds == 1
    assert stats.shards_rebuilt == NUM_SHARDS + 1  # first load + one dirty shard
    assert stats.shards_skipped == NUM_SHARDS - 1
    assert stats.rebuild_latency is not None and stats.rebuild_latency.count == 2
    generations = [shard.generation for shard in stats.shards]
    assert generations[3] == 2
    assert generations.count(1) == NUM_SHARDS - 1
    assert service.query(fresh)
    assert all(service.query_many(dataset.positives))


def test_service_rebuild_full_when_disabled(dataset):
    service = MembershipService(backend="bloom", num_shards=4)
    service.load(dataset.positives)
    service.rebuild(dataset.positives, incremental=False)
    stats = service.stats()
    assert stats.shards_rebuilt == 8 and stats.shards_skipped == 0
    # A forced full rebuild is a fresh store: per-shard generations reset to 1.
    assert [shard.generation for shard in stats.shards] == [1, 1, 1, 1]


def test_service_noop_rebuild_shares_every_filter(dataset):
    service = MembershipService(backend="bloom", num_shards=4)
    service.load(dataset.positives)
    before = [id(filt) for filt in service.snapshot.store.filters]
    service.rebuild(dataset.positives)
    after = [id(filt) for filt in service.snapshot.store.filters]
    assert after == before
    assert service.generation == 2  # the service generation still advances
    assert service.stats().shards_skipped == 4


def test_service_parallel_rebuild_answers_identically(dataset):
    sequential = MembershipService(backend="bloom", num_shards=NUM_SHARDS)
    sequential.load(dataset.positives)
    parallel = MembershipService(
        backend="bloom", num_shards=NUM_SHARDS, build_workers=4
    )
    parallel.load(dataset.positives)
    assert codec.dumps(parallel.snapshot.store) == codec.dumps(sequential.snapshot.store)


def test_snapshot_restore_rebuilds_fully_once_then_incrementally(tmp_path, dataset):
    """A restored service cannot verify the snapshot's build parameters.

    An installed snapshot records no ``build_params``, so the first rebuild
    after a restore is full (a snapshot built at different bits/key must not
    leak its shards into the new configuration); from then on fingerprints
    diff as usual.
    """
    service = MembershipService(backend="bloom", num_shards=NUM_SHARDS, bits_per_key=10.0)
    service.load(dataset.positives)
    path = tmp_path / "store.snap"
    service.save_snapshot(path)
    revived = MembershipService.from_snapshot(path, backend="bloom", bits_per_key=10.0)
    revived.rebuild(dataset.positives)
    stats = revived.stats()
    assert stats.shards_rebuilt == NUM_SHARDS and stats.shards_skipped == 0
    revived.rebuild(dataset.positives)  # now the previous generation is known
    stats = revived.stats()
    assert stats.shards_rebuilt == NUM_SHARDS
    assert stats.shards_skipped == NUM_SHARDS


# --------------------------------------------------------------------- #
# Per-shard backend overrides (what an adaptive migration asks the store for)
# --------------------------------------------------------------------- #
def test_shard_backend_override_dirties_only_that_shard(dataset):
    previous = ShardedFilterStore.build(
        dataset.positives, num_shards=NUM_SHARDS, backend="bloom", bits_per_key=10.0
    )
    store, rebuilt, skipped = ShardedFilterStore.rebuild_from(
        previous,
        dataset.positives,
        negatives=dataset.negatives,
        backend="bloom",
        shard_backends={5: ("habf", {"bits_per_key": 10.0})},
        bits_per_key=10.0,
    )
    assert rebuilt == [5]
    assert sorted(rebuilt + skipped) == list(range(NUM_SHARDS))
    assert store.backend_name == "mixed"
    assert store.shard_backend_names[5] == "habf"
    assert [name for i, name in enumerate(store.shard_backend_names) if i != 5] == [
        "bloom"
    ] * (NUM_SHARDS - 1)
    for index in range(NUM_SHARDS):
        if index != 5:
            assert store.filters[index] is previous.filters[index]
    assert all(store.query_many(dataset.positives))


def test_repeated_shard_backend_assignment_is_clean(dataset):
    """An unchanged assignment must not rebuild: migrations are sticky."""
    first = ShardedFilterStore.build(
        dataset.positives,
        num_shards=NUM_SHARDS,
        backend="bloom",
        shard_backends={5: ("habf", {"bits_per_key": 10.0})},
        bits_per_key=10.0,
    )
    store, rebuilt, skipped = ShardedFilterStore.rebuild_from(
        first,
        dataset.positives,
        backend="bloom",
        shard_backends={5: ("habf", {"bits_per_key": 10.0})},
        bits_per_key=10.0,
    )
    assert rebuilt == []
    assert skipped == list(range(NUM_SHARDS))
    assert all(
        store.filters[index] is first.filters[index] for index in range(NUM_SHARDS)
    )


def test_dropping_shard_backend_assignment_reverts_the_shard(dataset):
    mixed = ShardedFilterStore.build(
        dataset.positives,
        num_shards=NUM_SHARDS,
        backend="bloom",
        shard_backends={5: ("habf", {"bits_per_key": 10.0})},
        bits_per_key=10.0,
    )
    store, rebuilt, _ = ShardedFilterStore.rebuild_from(
        mixed, dataset.positives, backend="bloom", bits_per_key=10.0
    )
    assert rebuilt == [5]  # same keys, but the shard's backend changed back
    assert store.backend_name == "bloom"
    assert store.shard_backend_names == ["bloom"] * NUM_SHARDS
    assert all(store.query_many(dataset.positives))


def test_shard_backend_override_rejects_unknown_shards(dataset):
    with pytest.raises(ConfigurationError, match="shard_backends"):
        ShardedFilterStore.build(
            dataset.positives,
            num_shards=4,
            backend="bloom",
            shard_backends={7: "habf"},
        )


def test_mixed_store_survives_service_snapshot_restore(tmp_path, dataset):
    service = MembershipService(backend="bloom", num_shards=4, bits_per_key=10.0)
    mixed = ShardedFilterStore.build(
        dataset.positives,
        negatives=dataset.negatives,
        num_shards=4,
        backend="bloom",
        shard_backends={2: ("habf", {"bits_per_key": 10.0})},
        bits_per_key=10.0,
    )
    service.install_snapshot(mixed)
    path = tmp_path / "mixed.snap"
    service.save_snapshot(path)
    revived = MembershipService.from_snapshot(path, backend="bloom", bits_per_key=10.0)
    store = revived.snapshot.store
    assert store.backend_name == "mixed"
    assert store.shard_backend_names == mixed.shard_backend_names
    assert all(revived.query_many(dataset.positives))


def test_rebuild_is_full_when_backend_kwargs_change(dataset):
    """Clean shards built under other parameters must not be reused."""
    service = MembershipService(backend="bloom", num_shards=4, bits_per_key=8.0)
    service.load(dataset.positives)
    other = MembershipService(backend="bloom", num_shards=4, bits_per_key=16.0)
    other.install_snapshot(service.snapshot.store)
    other.rebuild(dataset.positives)  # same keys, but 8-bpk shards are stale
    stats = other.stats()
    assert stats.shards_skipped == 0
    assert all(
        filt.num_bits >= 16 * count / 4
        for filt, count in zip(
            other.snapshot.store.filters, other.snapshot.store.shard_key_counts
        )
    )
