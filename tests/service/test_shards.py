"""Sharded store: routing, batch semantics, backends and serialization."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service import codec
from repro.service.backends import (
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.service.shards import EmptyShardFilter, ShardRouter, ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like


@pytest.fixture(scope="module")
def dataset():
    return generate_shalla_like(num_positives=900, num_negatives=800, seed=31)


def test_router_is_deterministic_and_covers_all_shards():
    router = ShardRouter(num_shards=8, seed=3)
    keys = [f"key-{i}" for i in range(2000)]
    shards = [router.shard_of(key) for key in keys]
    assert shards == [router.shard_of(key) for key in keys]
    assert set(shards) == set(range(8))
    assert all(0 <= shard < 8 for shard in shards)


def test_router_seed_changes_placement():
    keys = [f"key-{i}" for i in range(500)]
    a = ShardRouter(num_shards=4, seed=0)
    b = ShardRouter(num_shards=4, seed=1)
    assert [a.shard_of(k) for k in keys] != [b.shard_of(k) for k in keys]


@pytest.mark.parametrize("backend", ["habf", "f-habf", "bloom", "bloom-dh", "xor"])
def test_store_has_zero_false_negatives_across_backends(dataset, backend):
    store = ShardedFilterStore.build(
        dataset.positives,
        negatives=dataset.negatives,
        num_shards=4,
        backend=backend,
        bits_per_key=10.0,
    )
    assert store.backend_name == backend
    assert all(store.query_many(dataset.positives))
    assert all(key in store for key in dataset.positives[:50])


def test_query_many_matches_scalar_queries_in_order(dataset):
    store = ShardedFilterStore.build(
        dataset.positives, negatives=dataset.negatives, num_shards=4, backend="habf"
    )
    probe = dataset.negatives[:300] + dataset.positives[:300]
    assert store.query_many(probe) == [store.query(key) for key in probe]


def test_store_partitions_every_key_exactly_once(dataset):
    store = ShardedFilterStore.build(dataset.positives, num_shards=6, backend="bloom")
    assert sum(store.shard_key_counts) == len(dataset.positives)
    assert store.num_keys() == len(dataset.positives)
    router = ShardRouter(6, seed=store.router_seed)
    for key in dataset.positives[:100]:
        assert store.shard_of(key) == router.shard_of(key)


def test_more_shards_than_keys_yields_empty_shards():
    store = ShardedFilterStore.build(["a", "b", "c"], num_shards=16, backend="bloom")
    empties = [f for f in store.filters if isinstance(f, EmptyShardFilter)]
    assert empties, "16 shards over 3 keys must leave empty shards"
    assert all(store.query_many(["a", "b", "c"]))
    missing = [f"missing-{i}" for i in range(64)]
    answers = store.query_many(missing)
    for key, answer in zip(missing, answers):
        if store.shard_key_counts[store.shard_of(key)] == 0:
            assert not answer


def test_empty_key_set_is_rejected():
    with pytest.raises(ConfigurationError):
        ShardedFilterStore.build([], num_shards=4)


def test_batch_path_uses_contains_many(dataset):
    store = ShardedFilterStore.build(dataset.positives, num_shards=2, backend="bloom")

    calls = {"batch": 0}

    class Recording:
        def __init__(self, inner):
            self._inner = inner

        def contains(self, key):
            return self._inner.contains(key)

        def contains_many(self, keys):
            calls["batch"] += 1
            return self._inner.contains_many(keys)

    store.filters[0] = Recording(store.filters[0])
    store.filters[1] = Recording(store.filters[1])
    store.query_many(dataset.positives[:200])
    # One contains_many call per shard touched by the batch, not per key.
    assert 1 <= calls["batch"] <= 2


def test_shard_stats_count_queries_and_positives(dataset):
    store = ShardedFilterStore.build(dataset.positives, num_shards=4, backend="habf")
    store.query_many(dataset.positives[:100])
    for key in dataset.negatives[:50]:
        store.query(key)
    stats = store.shard_stats()
    assert sum(s.queries for s in stats) == 150
    assert sum(s.positives for s in stats) >= 100
    assert sum(s.num_keys for s in stats) == len(dataset.positives)
    assert all(s.size_in_bits >= 0 for s in stats)


def test_shard_stats_are_point_in_time_copies(dataset):
    store = ShardedFilterStore.build(dataset.positives, num_shards=2, backend="bloom")
    before = store.shard_stats()
    store.query_many(dataset.positives[:100])
    after = store.shard_stats()
    assert sum(s.queries for s in before) == 0  # earlier snapshot unchanged
    assert sum(s.queries for s in after) == 100
    assert before[0] is not after[0]


def test_store_round_trips_through_codec(dataset):
    store = ShardedFilterStore.build(
        dataset.positives, negatives=dataset.negatives, num_shards=5, backend="habf"
    )
    revived = codec.loads(codec.dumps(store))
    assert isinstance(revived, ShardedFilterStore)
    assert revived.num_shards == store.num_shards
    assert revived.backend_name == store.backend_name
    assert revived.shard_key_counts == store.shard_key_counts
    probe = dataset.positives + dataset.negatives
    assert revived.query_many(probe) == store.query_many(probe)


def test_store_with_empty_shards_round_trips():
    store = ShardedFilterStore.build(["a", "b"], num_shards=8, backend="xor")
    revived = codec.loads(codec.dumps(store))
    assert revived.query_many(["a", "b", "c", "d"]) == store.query_many(["a", "b", "c", "d"])


# --------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------- #
def test_builtin_backends_are_registered():
    assert {"habf", "f-habf", "bloom", "bloom-dh", "xor"} <= set(available_backends())


def test_get_backend_forwards_kwargs():
    backend = get_backend("bloom", bits_per_key=14.0)
    assert backend.bits_per_key == 14.0


def test_unknown_backend_raises():
    with pytest.raises(ConfigurationError, match="unknown filter backend"):
        get_backend("cuckoo")


def test_resolve_backend_accepts_instances():
    instance = get_backend("habf", bits_per_key=9.0)
    assert resolve_backend(instance) is instance
    with pytest.raises(ConfigurationError):
        resolve_backend(instance, bits_per_key=12.0)
    with pytest.raises(ConfigurationError):
        resolve_backend(42)


def test_register_custom_backend():
    class TinyPolicy:
        name = "tiny"

        def create_filter(self, keys, negatives=(), costs=None):
            held = set(keys)

            class Exact:
                def contains(self, key):
                    return key in held

            return Exact()

    register_backend("tiny", TinyPolicy)
    try:
        store = ShardedFilterStore.build(["x", "y"], num_shards=2, backend="tiny")
        assert store.query("x") and not store.query("z")
    finally:
        from repro.service import backends as backends_module

        backends_module._REGISTRY.pop("tiny", None)


def test_bloom_dh_backend_round_trips_and_matches_scalar(dataset):
    """The double-hashing serving backend: zero FN, codec frames, engine parity."""
    store = ShardedFilterStore.build(
        dataset.positives,
        num_shards=4,
        backend="bloom-dh",
        bits_per_key=10.0,
        primitive="murmur3",
        seed=3,
    )
    assert store.backend_name == "bloom-dh"
    assert all(store.query_many(dataset.positives))
    probe = dataset.negatives[:200] + dataset.positives[:200]
    assert store.query_many(probe) == [store.query(key) for key in probe]
    revived = codec.loads(codec.dumps(store))
    assert revived.query_many(probe) == store.query_many(probe)
