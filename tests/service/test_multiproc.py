"""Tests for the multi-process serving tier (arena + replica pool).

The lifecycle tests are the load-bearing ones: shared-memory segments are
named kernel objects that outlive processes, so every path that can drop a
replica (clean stop, SIGKILL mid-load, pool close with windows in flight)
must leave ``/dev/shm`` clean — the parent owns every segment name and
unlinks it exactly once.  The generation tests pin the fleet-consistency
contract: windows never mix generations and the generation sequence each
client observes is monotone across a rebuild under load.
"""

from __future__ import annotations

import asyncio
import glob
import os
import signal
import time

import pytest

from repro.errors import CodecError, ServiceError
from repro.service.aserve import AdaptiveMicroBatcher
from repro.service.multiproc import (
    ReplicaPool,
    SharedFrameArena,
    shared_mapping_memory,
)
from repro.service.shards import ShardedFilterStore

KEYS = [f"key-{i}" for i in range(4000)]
NEGATIVES = [f"neg-{i}" for i in range(2000)]


def _leaked_segments():
    return glob.glob("/dev/shm/repro-arena-*")


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = set(_leaked_segments())
    yield
    leaked = [name for name in _leaked_segments() if name not in before]
    assert not leaked, f"shared-memory segments leaked: {leaked}"


@pytest.fixture
def store():
    return ShardedFilterStore.build(
        KEYS, num_shards=4, backend="bloom-dh", bits_per_key=10.0
    )


# --------------------------------------------------------------------- #
# SharedFrameArena
# --------------------------------------------------------------------- #
class TestSharedFrameArena:
    def test_publish_attach_round_trip(self, store):
        arena = SharedFrameArena.publish(store, generation=7)
        try:
            assert arena.owner and arena.generation == 7
            replica_side = SharedFrameArena.attach(arena.name)
            assert not replica_side.owner
            assert replica_side.generation == 7
            assert replica_side.frame_bytes == arena.frame_bytes
            decoded = replica_side.load_store()
            assert decoded.query_many(KEYS[:200]) == [True] * 200
            del decoded
            replica_side.dispose()
        finally:
            arena.dispose()

    def test_loaded_store_aliases_the_segment(self, store):
        """Zero-copy means mutating the segment changes the verdicts."""
        arena = SharedFrameArena.publish(store, generation=1)
        try:
            decoded = arena.load_store()
            assert decoded.query(KEYS[0])
            header = SharedFrameArena._HEADER.size
            arena._shm.buf[header : header + arena.frame_bytes] = bytes(
                arena.frame_bytes
            )
            assert decoded.query_many(KEYS[:50]) == [False] * 50
            del decoded
        finally:
            arena.dispose()

    def test_attach_rejects_garbage(self, store):
        arena = SharedFrameArena.publish(store, generation=1)
        try:
            arena._shm.buf[:4] = b"JUNK"
            with pytest.raises(CodecError, match="magic"):
                SharedFrameArena.attach(arena.name)
        finally:
            arena.dispose()

    def test_dispose_is_idempotent(self, store):
        arena = SharedFrameArena.publish(store, generation=1)
        arena.dispose()
        arena.dispose()

    def test_attach_missing_segment(self):
        with pytest.raises(FileNotFoundError):
            SharedFrameArena.attach("repro-arena-definitely-not-here")


# --------------------------------------------------------------------- #
# ReplicaPool basics
# --------------------------------------------------------------------- #
@pytest.fixture
def pool():
    pool = ReplicaPool(
        replicas=2,
        backend="bloom-dh",
        num_shards=4,
        bits_per_key=10.0,
        request_timeout=30.0,
    )
    yield pool
    pool.close()


class TestReplicaPool:
    def test_answers_match_direct_store(self, pool):
        pool.load(KEYS, negatives=NEGATIVES)
        direct = pool._builder.snapshot.store
        probe = KEYS[:300] + NEGATIVES[:300]
        answer = pool.query_batch(probe)
        assert answer.verdicts == direct.query_many(probe)
        assert answer.generation == 1
        assert pool.query(KEYS[0]) is True

    def test_rejects_before_load_and_bad_batches(self, pool):
        with pytest.raises(ServiceError, match="rejected"):
            pool.query_batch([])
        with pytest.raises(ServiceError, match="no snapshot"):
            pool.query_batch(["x"])

    def test_stats_aggregate_and_split(self, pool):
        pool.load(KEYS)
        pool.query_batch(KEYS[:100])
        pool.query_batch(KEYS[100:150])
        stats = pool.stats()
        assert stats.queries == 150
        assert stats.batches == 2
        assert stats.positives == 150
        per_replica = pool.stats_by_replica()
        assert len(per_replica) == 2
        assert sum(report["queries"] for report in per_replica) == 150
        assert {report["generation"] for report in per_replica} == {1}

    def test_metrics_carry_replica_labels(self, pool):
        from repro.obs.export import render_text

        pool.load(KEYS)
        pool.query_batch(KEYS[:10])
        text = render_text(pool.registry)
        assert 'repro_replica_windows_total{pool="' in text
        label = pool._obs_label
        assert (
            f'repro_service_queries_total{{service="{label}",replica="0"}}' in text
            or f'repro_service_queries_total{{service="{label}",replica="1"}}' in text
        )

    def test_close_is_idempotent_and_queries_fail_after(self, pool):
        pool.load(KEYS)
        pool.close()
        pool.close()
        with pytest.raises(ServiceError, match="closed"):
            pool.query_batch(["x"])


# --------------------------------------------------------------------- #
# Lifecycle: crashes must not leak kernel objects
# --------------------------------------------------------------------- #
class TestLifecycle:
    def test_sigkilled_replica_leaks_nothing(self):
        """SIGKILL one replica mid-service: the survivors keep answering and
        closing the pool removes every segment (the parent owns the names)."""
        with ReplicaPool(
            replicas=2, backend="bloom-dh", num_shards=2, bits_per_key=10.0,
            request_timeout=5.0,
        ) as pool:
            pool.load(KEYS)
            segment = pool.arena.name
            victim = pool.replica_pids[0]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.2)
            answered = 0
            for _ in range(6):
                try:
                    assert pool.query_batch(KEYS[:10]).verdicts == [True] * 10
                    answered += 1
                except ServiceError:
                    pass  # the window that drew the dead replica
            assert answered >= 4
        assert not any(segment in name for name in _leaked_segments())

    def test_spawn_replicas_do_not_unlink_the_arena(self):
        """A spawn replica runs its own resource tracker; its exit must not
        take the fleet's segment with it (the attach path unregisters)."""
        with ReplicaPool(
            replicas=2, backend="bloom-dh", num_shards=2, bits_per_key=10.0,
            start_method="spawn",
        ) as pool:
            pool.load(KEYS)
            segment = f"/dev/shm/{pool.arena.name}"
            victim = pool.replica_pids[0]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.5)  # give a stray tracker time to misbehave
            assert os.path.exists(segment), (
                "a replica's resource tracker unlinked the live arena"
            )
            answered = 0
            for _ in range(6):
                try:
                    assert pool.query_batch(KEYS[:5]).verdicts == [True] * 5
                    answered += 1
                except ServiceError:
                    pass  # the window that drew the dead replica
            assert answered >= 4
            assert os.path.exists(segment)




# --------------------------------------------------------------------- #
# Generation consistency under rebuild
# --------------------------------------------------------------------- #
class TestGenerationConsistency:
    def test_rebuild_rolls_every_replica(self):
        with ReplicaPool(
            replicas=2, backend="bloom-dh", num_shards=2, bits_per_key=10.0
        ) as pool:
            first = pool.load(KEYS)
            second = pool.rebuild(KEYS + ["brand-new"])
            assert (first, second) == (1, 2)
            assert pool.query("brand-new") is True
            assert {r["generation"] for r in pool.stats_by_replica()} == {2}
            old_segments = [n for n in _leaked_segments() if n.endswith("-g1")]
            assert not old_segments, "generation-1 arena survived the roll"

    def test_windows_never_mix_generations_under_load(self):
        """Rebuild while 8 async clients hammer the pool through the batcher:
        every answered window carries exactly one generation, and each
        client observes a monotone generation sequence."""
        with ReplicaPool(
            replicas=2, backend="bloom-dh", num_shards=2, bits_per_key=10.0
        ) as pool:
            pool.load(KEYS)

            async def scenario():
                generations = []

                async def client():
                    seen = []
                    async with AdaptiveMicroBatcher(
                        pool, max_batch=64, max_wait_ms=0.5
                    ) as front:
                        for _ in range(30):
                            verdicts, generation = (
                                await front.query_many_with_generation(KEYS[:16])
                            )
                            assert verdicts == [True] * 16
                            seen.append(generation)
                    generations.append(seen)

                loop = asyncio.get_running_loop()
                clients = [asyncio.ensure_future(client()) for _ in range(8)]
                for extra in range(3):
                    await loop.run_in_executor(
                        None, pool.rebuild, KEYS + [f"gen-extra-{extra}"]
                    )
                await asyncio.gather(*clients)
                return generations

            observed = asyncio.run(scenario())
            assert len(observed) == 8
            for sequence in observed:
                assert sequence == sorted(sequence), (
                    f"client observed generations out of order: {sequence}"
                )
            assert pool.generation == 4


# --------------------------------------------------------------------- #
# SO_REUSEPORT direct-accept mode
# --------------------------------------------------------------------- #
@pytest.mark.skipif(
    not hasattr(__import__("socket"), "SO_REUSEPORT"),
    reason="SO_REUSEPORT not available",
)
class TestReuseport:
    def test_replicas_accept_directly(self):
        with ReplicaPool(
            replicas=2, backend="bloom-dh", num_shards=2, bits_per_key=10.0
        ) as pool:
            pool.load(KEYS)
            host, port = pool.start_reuseport()

            async def drive():
                lines = []
                for _ in range(6):
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(f"M {KEYS[0]} {KEYS[1]} certainly-negative\n".encode())
                    await writer.drain()
                    lines.append((await reader.readline()).decode().strip())
                    writer.close()
                    await writer.wait_closed()
                return lines

            for line in asyncio.run(drive()):
                generation, *verdicts = line.split()[1:]
                assert generation == "1"
                assert verdicts[:2] == ["1", "1"]
            # the kernel spread connections over replica-resident servers
            per_replica = pool.stats_by_replica()
            assert sum(report["batches"] for report in per_replica) == 6


# --------------------------------------------------------------------- #
# smaps accounting helper
# --------------------------------------------------------------------- #
#: smaps is the Linux-only source the accounting parses; computed once so
#: the skip (and its reason) is visible in collection output instead of a
#: silent in-test bail.
SMAPS_AVAILABLE = os.path.exists(f"/proc/{os.getpid()}/smaps")


class TestSharedMappingMemory:
    @pytest.mark.skipif(
        not SMAPS_AVAILABLE,
        reason="/proc/<pid>/smaps unavailable (non-Linux or kernel without smaps)",
    )
    def test_reports_shared_arena_pages(self, store):
        arena = SharedFrameArena.publish(store, generation=1)
        try:
            buffer = bytes(arena._shm.buf)  # touch every page
            assert len(buffer) == arena.size_bytes
            accounting = shared_mapping_memory(os.getpid(), arena.name)
            assert accounting is not None
            assert accounting["rss"] >= arena.frame_bytes
        finally:
            arena.dispose()

    @pytest.mark.skipif(
        SMAPS_AVAILABLE,
        reason="smaps present; accounting covered by test_reports_shared_arena_pages",
    )
    def test_degrades_to_none_without_smaps(self, store):
        """macOS/BSD fallback: no smaps means ``None``, never an exception."""
        arena = SharedFrameArena.publish(store, generation=1)
        try:
            assert shared_mapping_memory(os.getpid(), arena.name) is None
        finally:
            arena.dispose()

    def test_absent_mapping_returns_none(self):
        assert shared_mapping_memory(os.getpid(), "no-such-segment") is None
