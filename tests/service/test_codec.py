"""Codec round-trip and corruption tests (property-style over seeds)."""

from __future__ import annotations

import struct

import pytest

from repro.baselines.xor_filter import XorFilter
from repro.core.bitarray import BitArray
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.habf import HABF, FastHABF
from repro.errors import CodecError
from repro.hashing.double_hashing import DoubleHashFamily
from repro.hashing.registry import build_family
from repro.service import codec
from repro.service.shards import ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like


def _dataset(seed: int):
    data = generate_shalla_like(num_positives=400, num_negatives=350, seed=seed)
    unseen = [f"unseen-{seed}-{i}" for i in range(300)]
    return data.positives, data.negatives, data.positives + data.negatives + unseen


def _recrc(frame: bytes) -> bytes:
    """Recompute the trailing CRC of a (possibly mutated) frame body."""
    import zlib

    body = frame[:-4]
    return body + struct.pack(">I", zlib.crc32(body[4:]))


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_bitarray_round_trip(seed):
    bits = BitArray.from_indices(997, [i * seed % 997 for i in range(250)])
    revived = codec.loads(codec.dumps(bits))
    assert revived == bits


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_bloom_round_trip_answers_identically(seed):
    positives, _, probe = _dataset(seed)
    bloom = BloomFilter(num_bits=4096, num_hashes=optimal_num_hashes(10.0))
    bloom.add_all(positives)
    revived = codec.loads(codec.dumps(bloom))
    assert isinstance(revived, BloomFilter)
    assert revived.num_items == bloom.num_items
    assert [revived.contains(k) for k in probe] == [bloom.contains(k) for k in probe]


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_habf_round_trip_preserves_zero_false_negatives(seed):
    positives, negatives, probe = _dataset(seed)
    habf = HABF.build(positives, negatives, bits_per_key=10.0)
    revived = codec.loads(codec.dumps(habf))
    assert isinstance(revived, HABF) and not isinstance(revived, FastHABF)
    assert all(revived.contains(key) for key in positives)
    assert [revived.contains(k) for k in probe] == [habf.contains(k) for k in probe]
    assert revived.size_in_bits() == habf.size_in_bits()


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_fast_habf_round_trip(seed):
    positives, negatives, probe = _dataset(seed)
    fast = FastHABF.build(positives, negatives, bits_per_key=10.0)
    revived = codec.loads(codec.dumps(fast))
    assert type(revived) is FastHABF
    assert all(revived.contains(key) for key in positives)
    assert [revived.contains(k) for k in probe] == [fast.contains(k) for k in probe]


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_xor_round_trip(seed):
    positives, _, probe = _dataset(seed)
    xor = XorFilter.from_bits_per_key(positives, 10.0, seed=seed)
    revived = codec.loads(codec.dumps(xor))
    assert isinstance(revived, XorFilter)
    assert all(revived.contains(key) for key in positives)
    assert [revived.contains(k) for k in probe] == [xor.contains(k) for k in probe]


def test_wbf_cache_counts_above_255_round_trip():
    """Cache counts are u16 in the frame — large max_hashes must not crash."""
    from repro.baselines.weighted_bloom import WeightedBloomFilter

    wbf = WeightedBloomFilter(
        num_bits=4096, default_hashes=2, max_hashes=400, cache_fraction=1.0
    )
    wbf._hash_cache = {"pricey": 300}
    wbf.add("pricey")
    wbf.add("cheap")
    frame = codec.dumps(wbf)
    revived = codec.loads(frame)
    assert revived.cached_hashes("pricey") == 300
    assert codec.dumps(revived) == frame


def test_hash_expressor_round_trip():
    positives, negatives, _ = _dataset(3)
    habf = HABF.build(positives, negatives, bits_per_key=10.0)
    expressor = habf.expressor
    assert expressor is not None and expressor.inserted_keys > 0
    revived = codec.loads(codec.dumps(expressor))
    k = habf.params.k
    for key in positives + negatives:
        assert revived.query(key, k) == expressor.query(key, k)
    assert revived.inserted_keys == expressor.inserted_keys
    assert revived.stats() == expressor.stats()


def test_custom_named_family_round_trips():
    family = build_family(["fnv", "djb", "sdbm", "murmur3", "xxhash"], seed=9, name="mini")
    positives, _, probe = _dataset(11)
    bloom = BloomFilter(num_bits=4096, num_hashes=3, family=family)
    bloom.add_all(positives)
    revived = codec.loads(codec.dumps(bloom))
    assert revived.family.name == "mini"
    assert [revived.contains(k) for k in probe] == [bloom.contains(k) for k in probe]


def test_double_hash_family_round_trips_with_seed():
    family = DoubleHashFamily(size=6, primitive="murmur3", seed=42)
    positives, _, probe = _dataset(13)
    bloom = BloomFilter(num_bits=4096, num_hashes=3, family=family)
    bloom.add_all(positives)
    revived = codec.loads(codec.dumps(bloom))
    assert isinstance(revived.family, DoubleHashFamily)
    assert revived.family.seed == 42
    assert [revived.contains(k) for k in probe] == [bloom.contains(k) for k in probe]


def test_file_dump_and_load(tmp_path):
    positives, negatives, probe = _dataset(5)
    habf = HABF.build(positives, negatives, bits_per_key=10.0)
    path = tmp_path / "filter.habf"
    written = codec.dump(habf, path)
    assert path.stat().st_size == written
    revived = codec.load(path)
    assert [revived.contains(k) for k in probe] == [habf.contains(k) for k in probe]


# --------------------------------------------------------------------- #
# Rejection of malformed frames
# --------------------------------------------------------------------- #
def test_rejects_bad_magic():
    frame = codec.dumps(BitArray.from_indices(64, [1, 2, 3]))
    with pytest.raises(CodecError, match="magic"):
        codec.loads(b"NOPE" + frame[4:])


def test_rejects_wrong_version():
    frame = bytearray(codec.dumps(BitArray.from_indices(64, [1, 2, 3])))
    frame[4] = codec.CODEC_VERSION + 1
    with pytest.raises(CodecError, match="version"):
        codec.loads(_recrc(bytes(frame)))


def test_version_1_frames_still_decode():
    """Filter payloads are unchanged since version 1; old frames must load."""
    bits = BitArray.from_indices(64, [1, 2, 3])
    frame = bytearray(codec.dumps(bits))
    assert frame[4] == codec.CODEC_VERSION
    frame[4] = 1
    revived = codec.loads(_recrc(bytes(frame)))
    assert revived == bits


def test_version_1_store_frames_decode_with_unknown_fingerprints():
    """Pre-rebuild-pipeline store frames (no generations/fingerprints) load.

    A version-1 store payload is ``num_shards, router_seed, backend_name,
    then per shard: key_count + nested filter frame``.  Reviving one must
    default every shard generation to 1 and every fingerprint to unknown
    (so the first incremental rebuild treats all shards as dirty instead of
    trusting garbage).
    """
    import zlib

    positives, _, probe = _dataset(19)
    bloom_a = BloomFilter(num_bits=1024, num_hashes=3)
    bloom_a.add_all(positives[:100])
    bloom_b = BloomFilter(num_bits=1024, num_hashes=3)
    bloom_b.add_all(positives[100:200])
    writer = codec._Writer()
    writer.u32(2)
    writer.u64(0)
    writer.str_field("bloom")
    for bloom, count in ((bloom_a, 100), (bloom_b, 100)):
        writer.u64(count)
        writer.bytes_field(codec.dumps(bloom))
    payload = writer.getvalue()
    header = codec._HEADER.pack(codec.FRAME_MAGIC, 1, codec.TAG_SHARDED_STORE, len(payload))
    frame = header + payload + struct.pack(">I", zlib.crc32(header[4:] + payload))
    store = codec.loads(frame)
    assert store.num_shards == 2
    assert store.shard_generations == [1, 1]
    assert store.shard_fingerprints == [None, None]
    assert store.shard_key_counts == [100, 100]


def test_rejects_unknown_type_tag():
    frame = bytearray(codec.dumps(BitArray.from_indices(64, [1, 2, 3])))
    frame[5] = 200
    with pytest.raises(CodecError, match="type tag"):
        codec.loads(_recrc(bytes(frame)))


def test_rejects_truncated_frames():
    frame = codec.dumps(HABF.build([f"k{i}" for i in range(50)], bits_per_key=10.0))
    for cut in (0, 3, len(frame) // 2, len(frame) - 1):
        with pytest.raises(CodecError):
            codec.loads(frame[:cut])


@pytest.mark.parametrize("offset_fraction", [0.1, 0.3, 0.5, 0.7, 0.9])
def test_rejects_flipped_payload_bytes(offset_fraction):
    frame = bytearray(codec.dumps(HABF.build([f"k{i}" for i in range(50)], bits_per_key=10.0)))
    offset = 10 + int((len(frame) - 14) * offset_fraction)
    frame[offset] ^= 0xFF
    with pytest.raises(CodecError, match="checksum"):
        codec.loads(bytes(frame))


def test_rejects_trailing_garbage():
    frame = codec.dumps(BitArray.from_indices(64, [1, 2, 3]))
    with pytest.raises(CodecError):
        codec.loads(frame + b"\x00")


def test_rejects_unsupported_objects():
    with pytest.raises(CodecError, match="cannot serialize"):
        codec.dumps({"not": "a filter"})


def test_out_of_range_values_raise_codec_error_not_struct_error():
    from repro.service.shards import ShardedFilterStore

    store = ShardedFilterStore.build(["a", "b", "c"], num_shards=2, router_seed=-1)
    assert store.query("a")  # negative seeds are fine at query time...
    with pytest.raises(CodecError, match="does not fit"):
        codec.dumps(store)  # ...but must fail loudly, not with struct.error


def test_structurally_invalid_payloads_raise_codec_error():
    # A CRC-valid Bloom frame whose selection indexes exceed the family size
    # must be refused at load time, not explode at query time.
    positives, _, _ = _dataset(2)
    bloom = BloomFilter(num_bits=512, num_hashes=3)
    bloom.add_all(positives[:50])
    frame = bytearray(codec.dumps(bloom))
    # Selection entries are the three u16s immediately after the family
    # descriptor (1 byte) and the u16 count; locate them via the known layout:
    # header(10) + num_bits(8) + num_hashes(2) + num_items(8) + family(1) + count(2).
    offset = 10 + 8 + 2 + 8 + 1 + 2
    frame[offset : offset + 2] = (999).to_bytes(2, "big")
    with pytest.raises(CodecError, match="selection index"):
        codec.loads(_recrc(bytes(frame)))


class TestZeroCopyDecode:
    """``loads(..., zero_copy=True)`` must alias, not copy, the frame."""

    def _store(self):
        positives, negatives, _ = _dataset(11)
        return ShardedFilterStore.build(
            positives, num_shards=4, backend="bloom-dh", bits_per_key=10.0
        ), positives, negatives

    def test_zero_copy_store_answers_identically(self):
        store, positives, negatives = self._store()
        frame = codec.dumps(store)
        aliased = codec.loads(memoryview(frame), zero_copy=True)
        probe = positives[:200] + negatives[:200]
        assert aliased.query_many(probe) == store.query_many(probe)

    def test_zero_copy_actually_aliases(self):
        store, positives, _ = self._store()
        backing = bytearray(codec.dumps(store))
        aliased = codec.loads(memoryview(backing), zero_copy=True)
        assert aliased.query(positives[0])
        # Zero the filter payload behind the decoder's back: every verdict
        # flips to negative, proving the BitArrays point into `backing`.
        header_and_meta = 64  # keep frame header + leading metadata intact
        for i in range(header_and_meta, len(backing) - 4):
            backing[i] = 0
        assert aliased.query_many(positives[:100]) == [False] * 100

    def test_default_decode_still_copies(self):
        store, positives, _ = self._store()
        backing = bytearray(codec.dumps(store))
        copied = codec.loads(bytes(backing))
        for i in range(64, len(backing) - 4):
            backing[i] = 0
        assert copied.query_many(positives[:100]) == [True] * 100
