"""Asyncio front-end: coalescing, window edges, generations, protocols.

Covers the micro-batcher edge cases the serving layer must survive:
empty-window flushes (every waiter cancelled), windows split at
``max_batch`` with spans kept intact, a hot rebuild landing while a batch
is in flight (the whole window still answers from one generation), and
cancellation of a parked caller.  The TCP and HTTP handlers are exercised
over real sockets on an ephemeral port.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.service import MembershipService
from repro.service.aserve import AdaptiveMicroBatcher, AsyncMembershipServer

POSITIVES = [f"evil-{i}.example" for i in range(300)]
NEGATIVES = [f"fine-{i}.example" for i in range(300)]


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture()
def service():
    svc = MembershipService(backend="bloom", num_shards=2, bits_per_key=12.0)
    svc.load(POSITIVES, NEGATIVES)
    return svc


# --------------------------------------------------------------------- #
# Coalescing and window policy
# --------------------------------------------------------------------- #
def test_concurrent_scalar_queries_coalesce(service):
    async def scenario():
        async with AdaptiveMicroBatcher(service, max_batch=128, max_wait_ms=5.0) as front:
            probe = POSITIVES[:40] + NEGATIVES[:40]
            answers = await asyncio.gather(*[front.query(key) for key in probe])
            return answers, front.batching_stats()

    answers, stats = run(scenario())
    assert answers == [True] * 40 + [False] * 40
    assert stats.coalesced_keys == 80
    # 80 concurrent callers must not mean 80 engine dispatches.
    assert stats.flushes < 40
    assert stats.batch_size is not None and stats.batch_size.p99 > 1
    assert stats.queue_depth is not None


def test_window_splits_at_max_batch_and_spans_stay_intact(service):
    async def scenario():
        async with AdaptiveMicroBatcher(service, max_batch=8, max_wait_ms=20.0) as front:
            scalar = [front.query(key) for key in POSITIVES[:20]]
            span = front.query_many_with_generation(POSITIVES[20:25])
            results = await asyncio.gather(*scalar, span)
            return results, front.batching_stats()

    results, stats = run(scenario())
    *scalars, (span_verdicts, span_generation) = results
    assert scalars == [True] * 20
    assert span_verdicts == [True] * 5 and span_generation == 1
    # 25 keys through windows of <= 8: at least three full windows, and the
    # batch-size distribution never exceeds max_batch.
    assert stats.full_flushes >= 1
    assert stats.flushes >= 4
    assert stats.batch_size.p99 <= 8


def test_oversized_request_bypasses_the_queue(service):
    async def scenario():
        async with AdaptiveMicroBatcher(service, max_batch=8, max_wait_ms=1.0) as front:
            verdicts, generation = await front.query_many_with_generation(POSITIVES[:30])
            return verdicts, generation, front.batching_stats()

    verdicts, generation, stats = run(scenario())
    assert verdicts == [True] * 30 and generation == 1
    assert stats.bypassed_batches == 1
    assert stats.flushes == 0  # never touched the coalescing queue


def test_empty_request_and_closed_batcher_raise(service):
    async def scenario():
        front = AdaptiveMicroBatcher(service)
        with pytest.raises(ServiceError, match="0 keys"):
            await front.query_many([])
        await front.aclose()
        with pytest.raises(ServiceError, match="closed"):
            await front.query("anything")

    run(scenario())
    with pytest.raises(ConfigurationError):
        AdaptiveMicroBatcher(service, max_batch=0)
    with pytest.raises(ConfigurationError):
        AdaptiveMicroBatcher(service, max_wait_ms=1.0, min_wait_ms=2.0)


def test_adaptive_deadline_tracks_arrival_rate(service):
    async def scenario():
        async with AdaptiveMicroBatcher(
            service, max_batch=64, max_wait_ms=4.0
        ) as front:
            before = front.current_wait_seconds
            for _ in range(6):
                await asyncio.gather(*[front.query(key) for key in POSITIVES[:50]])
            return before, front.current_wait_seconds

    before, after = run(scenario())
    # No traffic yet: the deadline sits at the cap.  Dense bursts pull the
    # EWMA arrival rate up, which shrinks the projected fill time.
    assert before == pytest.approx(4.0e-3)
    assert 0.0 <= after < before


# --------------------------------------------------------------------- #
# Cancellation and empty windows
# --------------------------------------------------------------------- #
def test_cancelled_caller_yields_empty_window_flush(service):
    async def scenario():
        # A 30 ms window floor parks the flusher long enough to cancel the
        # only waiter: the flush then sees an all-cancelled window and must
        # skip the engine without disturbing later traffic.
        async with AdaptiveMicroBatcher(
            service, max_batch=16, max_wait_ms=50.0, min_wait_ms=30.0
        ) as front:
            doomed = asyncio.ensure_future(front.query(POSITIVES[0]))
            await asyncio.sleep(0.005)  # let it enqueue and the window open
            doomed.cancel()
            await asyncio.sleep(0.08)  # window floor elapses, flush runs
            stats = front.batching_stats()
            assert stats.empty_flushes >= 1
            assert stats.cancelled_callers == 1
            assert stats.flushes == 0
            with pytest.raises(asyncio.CancelledError):
                await doomed
            # The batcher is still healthy for live callers.
            assert await front.query(POSITIVES[1]) is True

    run(scenario())


def test_cancelled_caller_among_live_ones_does_not_poison_the_window(service):
    async def scenario():
        async with AdaptiveMicroBatcher(
            service, max_batch=32, max_wait_ms=50.0, min_wait_ms=20.0
        ) as front:
            doomed = asyncio.ensure_future(front.query(NEGATIVES[0]))
            live = [asyncio.ensure_future(front.query(key)) for key in POSITIVES[:5]]
            await asyncio.sleep(0.005)
            doomed.cancel()
            answers = await asyncio.gather(*live)
            assert answers == [True] * 5
            stats = front.batching_stats()
            assert stats.cancelled_callers == 1
            assert stats.coalesced_keys == 5

    run(scenario())


# --------------------------------------------------------------------- #
# Generation consistency across hot rebuilds
# --------------------------------------------------------------------- #
def test_rebuild_during_inflight_batch_keeps_one_generation(service):
    """A dispatched window answers entirely from the snapshot it started on.

    The generation-1 store is gated on a threading event; while the engine
    dispatch is blocked inside it, a hot rebuild swaps in generation 2.  The
    in-flight window must still resolve every waiter with generation 1
    verdicts (including a key that only generation 1 contains), and traffic
    after the swap must see generation 2.
    """
    gen1_store = service.snapshot.store
    dispatch_started = threading.Event()
    release_dispatch = threading.Event()
    original_query_many = gen1_store.query_many

    def gated_query_many(keys):
        dispatch_started.set()
        assert release_dispatch.wait(timeout=10.0)
        return original_query_many(keys)

    gen1_store.query_many = gated_query_many
    only_gen1 = POSITIVES[0]
    refreshed = POSITIVES[1:]  # drop one key so the generations disagree

    async def scenario():
        loop = asyncio.get_running_loop()
        async with AdaptiveMicroBatcher(service, max_batch=64, max_wait_ms=1.0) as front:
            inflight = [
                asyncio.ensure_future(front.query_with_generation(key))
                for key in [only_gen1, POSITIVES[1], NEGATIVES[0]]
            ]
            await loop.run_in_executor(None, dispatch_started.wait)
            # The window is inside the gen-1 store now; swap generations.
            assert service.rebuild(refreshed, NEGATIVES) == 2
            release_dispatch.set()
            answers = await asyncio.gather(*inflight)
            after = await front.query_with_generation(POSITIVES[1])
            return answers, after

    answers, after = run(scenario())
    assert answers == [(True, 1), (True, 1), (False, 1)]
    assert after == (True, 2)
    assert service.generation == 2


# --------------------------------------------------------------------- #
# Stats plumbing
# --------------------------------------------------------------------- #
def test_front_end_stats_extend_service_stats(service):
    async def scenario():
        async with AdaptiveMicroBatcher(service, max_batch=32, max_wait_ms=2.0) as front:
            await asyncio.gather(*[front.query(key) for key in POSITIVES[:10]])
            return front.stats()

    stats = run(scenario())
    assert stats.generation == 1
    assert stats.queries == 10
    assert stats.batching is not None
    assert stats.batching.coalesced_keys == 10
    assert stats.batching.wait is not None
    assert stats.batching.wait.p50 <= stats.batching.wait.p99
    assert stats.batching.current_wait_ms <= 2.0
    # Plain service snapshots stay batching-free.
    assert service.stats().batching is None


def test_query_batch_reports_generation_and_counts(service):
    answer = service.query_batch([POSITIVES[0], NEGATIVES[0]])
    assert answer.verdicts == [True, False]
    assert answer.generation == 1
    assert len(answer) == 2
    assert answer.elapsed_seconds >= 0.0
    with pytest.raises(ServiceError):
        service.query_batch([])


# --------------------------------------------------------------------- #
# TCP line protocol
# --------------------------------------------------------------------- #
def test_tcp_protocol_roundtrip(service):
    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"PING\nGEN\nQ " + POSITIVES[0].encode() + b"\n"
                b"M " + POSITIVES[1].encode() + b" " + NEGATIVES[0].encode() + b"\n"
                b"Q\nNONSENSE\nSTATS\n"
            )
            await writer.drain()
            lines = [await reader.readline() for _ in range(7)]
            writer.close()
            return [line.decode().strip() for line in lines]

    pong, gen, scalar, multi, bad_q, unknown, stats = run(scenario())
    assert pong == "PONG"
    assert gen == "G 1"
    assert scalar == "V 1 1"
    assert multi == "V 1 1 0"
    assert bad_q.startswith("E ")
    assert unknown.startswith("E unknown command")
    assert stats.startswith("S ")
    decoded = json.loads(stats[2:])
    assert decoded["generation"] == 1
    assert decoded["batching"]["coalesced_keys"] >= 3


def test_tcp_concurrent_connections_share_one_batcher(service):
    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=3.0, max_batch=64) as server:
            host, port = await server.start_tcp()

            async def client(keys):
                reader, writer = await asyncio.open_connection(host, port)
                answers = []
                for key in keys:
                    writer.write(f"Q {key}\n".encode())
                    await writer.drain()
                    answers.append((await reader.readline()).decode().strip())
                writer.close()
                return answers

            per_client = [POSITIVES[i::8][:5] for i in range(8)]
            replies = await asyncio.gather(*[client(keys) for keys in per_client])
            return replies, server.batcher.batching_stats()

    replies, stats = run(scenario())
    assert all(reply == ["V 1 1"] * 5 for reply in replies)
    assert stats.coalesced_keys == 40
    # Eight connections issuing in lock-step coalesce into shared windows.
    assert stats.flushes < 40


# --------------------------------------------------------------------- #
# HTTP front-end
# --------------------------------------------------------------------- #
async def _http_request(host, port, raw: bytes):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(raw)
    await writer.drain()
    payload = await reader.read()
    writer.close()
    head, _, body = payload.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, json.loads(body)


def test_http_endpoints(service):
    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_http()
            query = await _http_request(
                host, port,
                f"GET /query?key={POSITIVES[0]} HTTP/1.1\r\nHost: t\r\n\r\n".encode(),
            )
            missing = await _http_request(
                host, port, b"GET /query HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            body = json.dumps([POSITIVES[1], NEGATIVES[0]]).encode()
            many = await _http_request(
                host, port,
                b"POST /query_many HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode() + body,
            )
            lines_body = f"{POSITIVES[2]}\n{NEGATIVES[1]}\n".encode()
            many_lines = await _http_request(
                host, port,
                b"POST /query_many HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(lines_body)}\r\n\r\n".encode() + lines_body,
            )
            generation = await _http_request(
                host, port, b"GET /generation HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            stats = await _http_request(
                host, port, b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            lost = await _http_request(
                host, port, b"GET /nowhere HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            return query, missing, many, many_lines, generation, stats, lost

    query, missing, many, many_lines, generation, stats, lost = run(scenario())
    assert query == (200, {"key": POSITIVES[0], "member": True, "generation": 1})
    assert missing[0] == 400
    assert many == (200, {"members": [True, False], "generation": 1})
    assert many_lines == (200, {"members": [True, False], "generation": 1})
    assert generation == (200, {"generation": 1})
    assert stats[0] == 200 and stats[1]["batching"]["coalesced_keys"] >= 4
    assert lost[0] == 404


# --------------------------------------------------------------------- #
# numpy-less fallback
# --------------------------------------------------------------------- #
def test_front_end_without_numpy(service, monkeypatch):
    from repro.hashing import vectorized

    monkeypatch.setattr(vectorized, "np", None)

    async def scenario():
        async with AdaptiveMicroBatcher(service, max_batch=16, max_wait_ms=2.0) as front:
            scalars = await asyncio.gather(*[front.query(key) for key in POSITIVES[:6]])
            span, generation = await front.query_many_with_generation(NEGATIVES[:3])
            return scalars, span, generation

    scalars, span, generation = run(scenario())
    assert scalars == [True] * 6
    assert span == [False] * 3 and generation == 1


def test_shared_batcher_survives_server_close(service):
    async def scenario():
        async with AdaptiveMicroBatcher(service, max_wait_ms=1.0) as shared:
            server = AsyncMembershipServer(service, batcher=shared)
            host, port = await server.start_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(f"Q {POSITIVES[0]}\n".encode())
            await writer.drain()
            assert (await reader.readline()).decode().strip() == "V 1 1"
            writer.close()
            await server.aclose()
            # The server owned the listeners, not the batcher: in-process
            # callers keep working after the network front-end shuts down.
            assert await shared.query(POSITIVES[1]) is True

    run(scenario())


def test_http_oversized_body_is_refused_without_buffering(service):
    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_http()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /query_many HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 10000000000\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readline()
            writer.close()
            return head.decode()

    assert " 413 " in run(scenario())


def test_batcher_rejects_max_batch_above_service_cap():
    svc = MembershipService(backend="bloom", num_shards=1, max_batch_size=64)
    svc.load(POSITIVES[:10])
    with pytest.raises(ConfigurationError, match="max_batch_size"):
        AdaptiveMicroBatcher(svc, max_batch=100)


def test_tcp_large_m_request_within_limits_and_overlong_line(service):
    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            # A ~90 KiB M line (5000 keys) is over asyncio's default 64 KiB
            # readline limit but within the server's raised stream limit.
            keys = [f"evil-{i % 300}.example" for i in range(5000)]
            writer.write(("M " + " ".join(keys) + "\n").encode())
            await writer.drain()
            reply = (await reader.readline()).decode().strip()
            assert reply.startswith("V 1 ")
            assert reply.split()[2:] == ["1"] * 5000
            writer.close()
            # A line over the stream limit gets an E reply, not a silent drop.
            reader2, writer2 = await asyncio.open_connection(host, port)
            writer2.write(b"M " + b"x" * (2 << 20))
            await writer2.drain()
            reply2 = (await reader2.readline()).decode().strip()
            assert reply2.startswith("E line exceeds")
            writer2.close()

    run(scenario())


def test_http_negative_content_length_is_a_400(service):
    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_http()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /query_many HTTP/1.1\r\nHost: t\r\nContent-Length: -5\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readline()
            writer.close()
            return head.decode()

    assert " 400 " in run(scenario())


async def _http_error_exchange(host, port, raw: bytes):
    """Send ``raw``, return (status line, headers, close-observed).

    ``close-observed`` is True only if the server actually shut the socket:
    ``reader.read()`` must reach EOF without the client half-closing first.
    """
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(raw)
    await writer.drain()
    writer.write_eof()  # client is done sending; response + EOF must follow
    payload = await asyncio.wait_for(reader.read(), timeout=5.0)
    closed = reader.at_eof()
    writer.close()
    head, _, _body = payload.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    return lines[0], lines[1:], closed


def test_http_pipelined_second_request_does_not_destroy_the_response(service):
    """A pipelining client must still receive the first response intact.

    The server answers one request per connection; a second request sitting
    unread in the receive buffer at close time would trigger an RST that
    can destroy the 200 still in flight.  The success path drains before
    closing, so the client sees the complete response and then EOF.
    """

    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_http()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                f"GET /query?key={POSITIVES[0]} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
                + b"GET /generation HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            await writer.drain()
            payload = await asyncio.wait_for(reader.read(), timeout=5.0)
            writer.close()
            return payload

    payload = run(scenario())
    head, _, body = payload.partition(b"\r\n\r\n")
    assert b" 200 " in head.splitlines()[0] + b" "
    assert json.loads(body) == {"key": POSITIVES[0], "member": True, "generation": 1}



@pytest.mark.parametrize(
    "raw, expected_status",
    [
        # Request line overrunning the 1 MiB stream limit → 414.
        (b"GET /" + b"x" * (2 << 20) + b" HTTP/1.1\r\n\r\n", "414"),
        # A single header line overrunning the stream limit → 431.
        (
            b"GET /generation HTTP/1.1\r\nX-Junk: " + b"y" * (2 << 20) + b"\r\n\r\n",
            "431",
        ),
        # Malformed request line → 400.
        (b"NONSENSE\r\n\r\n", "400"),
        # Body shorter than its declared Content-Length → 400.
        (
            b"POST /query_many HTTP/1.1\r\nHost: t\r\nContent-Length: 50\r\n\r\nshort",
            "400",
        ),
        # Undecodable JSON body → 400 (routed through the handler proper).
        (
            b"POST /query_many HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\n[oops",
            "400",
        ),
        # Oversized body that is actually sent → 413, and the response must
        # survive the unread megabytes (the handler drains before closing).
        (
            b"POST /query_many HTTP/1.1\r\nHost: t\r\nContent-Length: 2000000\r\n\r\n"
            + b"x" * 2_000_000,
            "413",
        ),
    ],
    ids=[
        "oversized-line",
        "oversized-header",
        "bad-request-line",
        "truncated-body",
        "bad-json",
        "oversized-body-sent",
    ],
)
def test_http_errors_reply_connection_close_and_close_the_socket(
    service, raw, expected_status
):
    """Every HTTP error path answers explicitly and then hangs up.

    The response must carry ``Connection: close`` and the server must
    actually close the connection (the client observes EOF without sending
    anything further) — a half-open socket after an error would wedge
    keep-alive clients forever.
    """

    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_http()
            return await _http_error_exchange(host, port, raw)

    status_line, headers, closed = run(scenario())
    assert f" {expected_status} " in status_line + " "
    assert any(h.lower() == "connection: close" for h in headers), headers
    assert closed, "server left the socket open after an error response"


# --------------------------------------------------------------------- #
# Keep-alive framing
# --------------------------------------------------------------------- #
async def _read_framed_response(reader):
    """Read exactly one content-length-framed response; returns (status, headers, body)."""
    head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=5.0)
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if _:
            headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, body


def test_http_keep_alive_serves_many_requests_on_one_socket(service):
    """An explicit ``Connection: keep-alive`` request keeps the socket open.

    Three requests ride one connection; each response is content-length
    framed and answers ``Connection: keep-alive``.  A final request without
    the header reverts to close semantics: one response, then EOF.
    """

    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_http()
            reader, writer = await asyncio.open_connection(host, port)
            results = []
            for key in (POSITIVES[0], NEGATIVES[0], POSITIVES[1]):
                writer.write(
                    f"GET /query?key={key} HTTP/1.1\r\nHost: t\r\n"
                    "Connection: keep-alive\r\n\r\n".encode()
                )
                await writer.drain()
                results.append(await _read_framed_response(reader))
            # no keep-alive header → server answers and closes
            writer.write(b"GET /generation HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            final = await _read_framed_response(reader)
            trailing = await asyncio.wait_for(reader.read(), timeout=5.0)
            writer.close()
            return results, final, trailing

    results, final, trailing = run(scenario())
    verdicts = []
    for status, headers, body in results:
        assert status == 200
        assert headers["connection"] == "keep-alive"
        verdicts.append(json.loads(body)["member"])
    assert verdicts == [True, False, True]
    status, headers, body = final
    assert status == 200 and headers["connection"] == "close"
    assert json.loads(body) == {"generation": 1}
    assert trailing == b"", "server wrote past the framed close response"


def test_http_keep_alive_errors_still_close(service):
    """A 400 on a keep-alive connection must not keep it open."""

    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_http()
            return await _http_error_exchange(
                host, port,
                b"GET /query HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
            )

    status_line, headers, closed = run(scenario())
    assert " 400 " in status_line + " "
    assert any(h.lower() == "connection: close" for h in headers), headers
    assert closed


# --------------------------------------------------------------------- #
# Rebuild-over-the-wire front-ends
# --------------------------------------------------------------------- #
def test_tcp_rebuild_command(service):
    """``R <json>`` rebuilds through the engine and reports the generation."""

    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_tcp()
            reader, writer = await asyncio.open_connection(host, port)

            async def exchange(line):
                writer.write(line.encode() + b"\n")
                await writer.drain()
                return (await reader.readline()).decode().strip()

            spec = json.dumps(
                {"keys": POSITIVES + ["tcp-rebuilt.example"], "negatives": NEGATIVES}
            )
            rebuilt = await exchange(f"R {spec}")
            verdict = await exchange("Q tcp-rebuilt.example")
            bad_json = await exchange("R {not json")
            bad_field = await exchange('R {"keys": ["k"], "bogus": 1}')
            no_keys = await exchange('R {"keys": []}')
            writer.close()
            return rebuilt, verdict, bad_json, bad_field, no_keys

    rebuilt, verdict, bad_json, bad_field, no_keys = run(scenario())
    assert rebuilt == "R 2"
    assert verdict == "V 2 1"  # the new generation answers the new key
    assert bad_json.startswith("E ")
    assert bad_field.startswith("E ") and "bogus" in bad_field
    assert no_keys.startswith("E ")
    assert service.generation == 2


def test_http_post_rebuild(service):
    """``POST /rebuild`` installs a new generation and returns it."""

    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_http()

            def post(spec_text):
                body = spec_text.encode()
                return _http_request(
                    host, port,
                    b"POST /rebuild HTTP/1.1\r\nHost: t\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode() + body,
                )

            ok = await post(json.dumps({
                "keys": POSITIVES + ["http-rebuilt.example"],
                "negatives": NEGATIVES,
                "incremental": True,
            }))
            member = await _http_request(
                host, port,
                b"GET /query?key=http-rebuilt.example HTTP/1.1\r\nHost: t\r\n\r\n",
            )
            not_dict = await post(json.dumps(["keys"]))
            unknown = await post(json.dumps({"keys": ["k"], "extra": True}))
            bad_costs = await post(json.dumps({"keys": ["k"], "costs": {"k": "x"}}))
            return ok, member, not_dict, unknown, bad_costs

    ok, member, not_dict, unknown, bad_costs = run(scenario())
    assert ok == (200, {"generation": 2, "num_keys": len(POSITIVES) + 1})
    assert member[0] == 200 and member[1]["member"] is True
    assert member[1]["generation"] == 2
    for status, body in (not_dict, unknown, bad_costs):
        assert status == 400 and "error" in body
    assert service.generation == 2


def test_http_rebuild_rejects_oversized_spec(service):
    """/rebuild enforces its own body cap with a clean 413."""

    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_http()
            oversized = b"[" + b"x" * (9 << 20)
            raw = (
                b"POST /rebuild HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(oversized)}\r\n\r\n".encode()
                + oversized
            )
            return await _http_error_exchange(host, port, raw)

    status_line, headers, closed = run(scenario())
    assert " 413 " in status_line + " "
    assert closed


def test_rebuild_spec_caps_total_keys(service):
    """The key-count cap rejects specs before any build work happens.

    The spec stays under the 8 MiB body cap on purpose — this exercises the
    key-count limit, not the byte limit.
    """

    async def scenario():
        async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
            host, port = await server.start_http()
            body = json.dumps({"keys": ["k"] * 1_000_001}).encode()
            assert len(body) < 8 << 20
            return await _http_request(
                host, port,
                b"POST /rebuild HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode() + body,
            )

    status, payload = run(scenario())
    assert status == 400 and "key" in payload["error"].lower()
    assert service.generation == 1
