"""Crash-safety battery for the disk-backed shard store.

The commit protocol claims: *a crash at any instant leaves either the old
directory or the new one — never a torn state*.  This file makes the claim
empirical.  For every named fault point inside ``commit()`` a forked child
installs a ``_FAULT_HOOK`` that SIGKILLs itself mid-commit; the parent then
reopens the store directory the corpse left behind and asserts

* the directory decodes (no torn commit point),
* the committed generation is exactly the one the protocol promises for
  that point (everything before the atomic rename → the old generation;
  the rename and after → the new one),
* ``verify()`` scrubs clean, and
* verdicts are bit-for-bit the surviving generation's — zero wrong
  verdicts, zero false negatives.

Beyond the SIGKILL matrix: truncated and partially-overwritten page files
must fail with a typed :class:`CodecError` (open-time for truncation,
read-time for a torn frame — never a silent wrong answer), leftovers of an
interrupted commit are swept by the next owning open, and an in-process
commit failure leaves the store serving the previous epoch.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.errors import CodecError
from repro.obs import Registry
from repro.service import diskstore
from repro.service.diskstore import DIRECTORY_NAME, DiskShardStore, _Directory
from repro.service.shards import ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash battery needs os.fork"
)

PAGE = 256

#: Every named point inside the commit protocol, in execution order.
FAULT_POINTS = (
    "pages-appended",
    "pages-synced",
    "directory-written",
    "directory-renamed",
    "before-cleanup",
)

#: Points strictly before the atomic ``os.replace`` — a kill there must
#: leave the *old* generation ruling.  From the rename on, the new
#: generation is durable.
DIES_AT_OLD = {"pages-appended", "pages-synced", "directory-written"}


@pytest.fixture(scope="module")
def dataset():
    return generate_shalla_like(num_positives=400, num_negatives=300, seed=41)


@pytest.fixture(scope="module")
def gen1_store(dataset):
    return ShardedFilterStore.build(
        dataset.positives,
        negatives=dataset.negatives,
        num_shards=4,
        backend="bloom-dh",
    )


def _gen2_keys(dataset):
    return dataset.positives + ["crash-key-a", "crash-key-b"]


def _successor(serving, dataset):
    """The deterministic generation-2 store (same in parent and child)."""
    return ShardedFilterStore.rebuild_from(
        serving,
        _gen2_keys(dataset),
        negatives=dataset.negatives,
        backend="bloom-dh",
    )


def _gen2_full_build(dataset):
    """Generation 2 built from scratch — full commits serialize every
    shard, so the store must hold real filters, not the serving view's
    lazy proxies."""
    return ShardedFilterStore.build(
        _gen2_keys(dataset),
        negatives=dataset.negatives,
        num_shards=4,
        backend="bloom-dh",
    )


def _kill_hook(point):
    def hook(reached):
        if reached == point:
            os.kill(os.getpid(), signal.SIGKILL)

    return hook


def _commit_in_doomed_child(path, dataset, point, incremental):
    """Fork; the child commits generation 2 and SIGKILLs itself at ``point``.

    Returns after asserting the child did die from the injected SIGKILL
    (any other exit means the fault point was never reached).
    """
    pid = os.fork()
    if pid == 0:
        # Child: never raise back into the pytest process — _exit on any
        # path the SIGKILL does not cover.
        try:
            disk = DiskShardStore.open(path, registry=Registry())
            if incremental:
                successor, rebuilt, _ = _successor(disk.serving_store(), dataset)
            else:
                successor, rebuilt = _gen2_full_build(dataset), None
            diskstore._FAULT_HOOK = _kill_hook(point)
            disk.commit(successor, 2, rebuilt_shards=rebuilt)
            os._exit(17)  # fault point never fired
        except BaseException:
            os._exit(18)
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL, (
        f"child survived to status {status!r}; fault {point!r} never fired"
    )


@pytest.mark.parametrize("incremental", [False, True], ids=["full", "incremental"])
@pytest.mark.parametrize("point", FAULT_POINTS)
def test_sigkill_mid_commit_leaves_a_whole_generation(
    tmp_path, dataset, gen1_store, point, incremental
):
    path = tmp_path / "store"
    DiskShardStore.create(
        path, gen1_store, page_size=PAGE, registry=Registry()
    ).close()

    probe = _gen2_keys(dataset) + dataset.negatives
    expected = {1: gen1_store.query_many(probe)}
    if incremental:
        gen2_store, rebuilt, _ = _successor(gen1_store, dataset)
        if not 0 < len(rebuilt) < gen1_store.num_shards:
            pytest.skip("fixture no longer dirties a strict subset of shards")
    else:
        gen2_store = _gen2_full_build(dataset)
    expected[2] = gen2_store.query_many(probe)

    _commit_in_doomed_child(path, dataset, point, incremental)

    with DiskShardStore.open(path, registry=Registry()) as survivor:
        generation = survivor.generation
        if point in DIES_AT_OLD:
            assert generation == 1, f"{point}: pre-rename kill must keep gen 1"
        else:
            assert generation == 2, f"{point}: post-rename kill must keep gen 2"
        assert survivor.verify() == gen1_store.num_shards
        assert survivor.serving_store().query_many(probe) == expected[generation]
        # zero false negatives for the surviving generation's key set
        keys = dataset.positives if generation == 1 else _gen2_keys(dataset)
        assert all(survivor.serving_store().query(key) for key in keys)
        # the sweep removed every remnant of the doomed commit
        leftovers = sorted(p.name for p in path.iterdir())
        assert "DIRECTORY.tmp" not in leftovers
        assert leftovers == [
            DIRECTORY_NAME,
            survivor.pages_file.name,
        ], f"{point}: stray files after reopen: {leftovers}"


def test_truncated_pages_file_fails_typed(tmp_path, gen1_store):
    path = tmp_path / "store"
    DiskShardStore.create(path, gen1_store, page_size=PAGE, registry=Registry()).close()
    pages = next(path.glob("frames-*.pages"))
    with open(pages, "r+b") as handle:
        handle.truncate(pages.stat().st_size // 2)
    with pytest.raises(CodecError, match="truncated"):
        DiskShardStore.open(path, registry=Registry())


def test_missing_pages_file_fails_typed(tmp_path, gen1_store):
    path = tmp_path / "store"
    DiskShardStore.create(path, gen1_store, page_size=PAGE, registry=Registry()).close()
    next(path.glob("frames-*.pages")).unlink()
    with pytest.raises(CodecError, match="missing page file"):
        DiskShardStore.open(path, registry=Registry())


def test_torn_frame_fails_typed_on_read_not_wrong(tmp_path, dataset, gen1_store):
    """A partially-written page inside a frame can never answer wrongly.

    The directory still decodes (it was committed before the tear), so the
    store opens; the damage must surface as a typed CodecError on first
    touch of the torn shard — the CRC catches it before any verdict is
    produced from garbage bits.
    """
    path = tmp_path / "store"
    DiskShardStore.create(path, gen1_store, page_size=PAGE, registry=Registry()).close()
    directory = _Directory.decode((path / DIRECTORY_NAME).read_bytes())
    entry = directory.shards[0]
    tail = entry.start_page * PAGE + entry.frame_bytes - 16
    with open(path / directory.pages_name, "r+b") as handle:
        handle.seek(tail)
        handle.write(b"\xa5" * 16)
    with DiskShardStore.open(path, registry=Registry()) as disk:
        with pytest.raises(CodecError):
            disk.verify()
        with pytest.raises(CodecError):
            disk._filter_for(disk._epoch, 0)
        # untouched shards still answer — and identically to the original
        for shard in range(1, gen1_store.num_shards):
            revived = disk._filter_for(disk._epoch, shard)
            for key in dataset.positives[:40]:
                assert revived.contains(key) == gen1_store.filters[shard].contains(key)


def test_owning_open_sweeps_commit_leftovers(tmp_path, gen1_store):
    path = tmp_path / "store"
    DiskShardStore.create(path, gen1_store, page_size=PAGE, registry=Registry()).close()
    (path / "DIRECTORY.tmp").write_bytes(b"half a directory")
    (path / "frames-999999.pages").write_bytes(b"\x00" * PAGE)

    # a non-owning reader must leave a concurrent owner's files alone
    DiskShardStore.open(path, registry=Registry(), cleanup=False).close()
    assert (path / "DIRECTORY.tmp").exists()
    assert (path / "frames-999999.pages").exists()

    DiskShardStore.open(path, registry=Registry()).close()
    assert not (path / "DIRECTORY.tmp").exists()
    assert not (path / "frames-999999.pages").exists()


def test_failed_commit_keeps_serving_previous_epoch(tmp_path, dataset, gen1_store):
    """An in-process commit failure is invisible to readers: old epoch rules."""
    path = tmp_path / "store"
    probe = _gen2_keys(dataset) + dataset.negatives
    disk = DiskShardStore.create(path, gen1_store, page_size=PAGE, registry=Registry())
    try:
        expected = disk.serving_store().query_many(probe)
        successor, rebuilt, _ = _successor(disk.serving_store(), dataset)

        def explode(point):
            if point == "pages-synced":
                raise OSError("injected: disk full")

        diskstore._FAULT_HOOK = explode
        try:
            with pytest.raises(OSError, match="injected"):
                disk.commit(successor, 2, rebuilt_shards=rebuilt)
        finally:
            diskstore._FAULT_HOOK = None

        assert disk.generation == 1
        assert disk.serving_store().query_many(probe) == expected
        # on-disk state is the old generation too
        with DiskShardStore.open(path, registry=Registry(), cleanup=False) as reader:
            assert reader.generation == 1

        # the store is not wedged: the retry goes through
        assert disk.commit(successor, 2, rebuilt_shards=rebuilt) == 2
        assert disk.serving_store().query_many(probe) == successor.query_many(probe)
    finally:
        disk.close()
