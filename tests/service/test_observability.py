"""Telemetry integration: stats-as-views parity, /metrics endpoints, races.

Covers the glue the obs unit tests cannot: the service and batcher counters
are live views over registry instruments (``stats()`` and the exposition can
never disagree), ``GET /metrics`` and the ``METRICS`` line command serve a
valid exposition covering query/rebuild/batcher/shard families, and the
:class:`LatencyWindow` snapshot race stays fixed.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading

import pytest

from repro.obs import FprEstimator, Registry, parse_families, render_text
from repro.service import (
    AsyncMembershipServer,
    LatencyWindow,
    MembershipService,
)

KEYS = [f"key-{i}" for i in range(400)]


@pytest.fixture()
def registry():
    return Registry()


@pytest.fixture()
def service(registry):
    service = MembershipService(
        backend="bloom", num_shards=2, bits_per_key=10.0, registry=registry
    )
    service.load(KEYS)
    return service


class TestStatsAreViews:
    def test_counters_match_instrument_values(self, service, registry):
        service.query(KEYS[0])
        service.query("missing-key")
        service.query_batch(KEYS[:100])
        with pytest.raises(Exception):
            service.query_batch([])
        stats = service.stats()
        label = service._obs_label
        counter = registry.get("repro_service_queries_total")
        assert stats.queries == 102 == int(counter.labels(label).value)
        assert stats.batches == 1
        assert stats.rejected_batches == 1
        assert (
            stats.positives
            == int(registry.get("repro_service_positives_total").labels(label).value)
        )

    def test_rebuild_counters_and_gauges(self, service, registry):
        service.rebuild(KEYS + ["extra-key"])
        stats = service.stats()
        label = service._obs_label
        assert stats.rebuilds == 1
        assert stats.generation == 2
        assert registry.get("repro_service_generation").labels(label).value == 2.0
        assert (
            registry.get("repro_service_keys").labels(label).value
            == len(KEYS) + 1
        )
        assert registry.get("repro_rebuild_seconds").labels(label).count == 2

    def test_query_latency_mirrors_into_histogram(self, service, registry):
        service.query_batch(KEYS[:50])
        label = service._obs_label
        histogram = registry.get("repro_query_seconds")
        assert histogram.labels(label).count == 1  # one per-key-average sample
        assert service.stats().latency.count == 1

    def test_uptime_and_rss_surface_in_stats(self, service):
        stats = service.stats()
        assert stats.uptime_seconds > 0.0
        # /proc is available on the platforms CI runs; tolerate None elsewhere.
        assert stats.rss_bytes is None or stats.rss_bytes > 0

    def test_two_services_share_families_but_not_children(self, registry):
        first = MembershipService(
            backend="bloom", num_shards=1, bits_per_key=8.0, registry=registry
        )
        second = MembershipService(
            backend="bloom", num_shards=1, bits_per_key=8.0, registry=registry
        )
        first.load(KEYS[:10])
        second.load(KEYS[:10])
        first.query(KEYS[0])
        assert first.stats().queries == 1
        assert second.stats().queries == 0

    def test_shard_collector_exports_live_views(self, service, registry):
        service.query_batch(KEYS[:100])
        families = parse_families(render_text(registry))
        samples = families["repro_shard_queries_total"][1]
        assert sum(samples.values()) == 100
        assert families["repro_shard_keys"][0] == "gauge"
        # A rebuild resets the per-shard counters (legal counter reset).
        service.rebuild(KEYS)
        samples = parse_families(render_text(registry))["repro_shard_queries_total"][1]
        assert sum(samples.values()) == 0


class TestFprWiring:
    def test_estimator_families_appear_after_traffic(self, registry):
        estimator = FprEstimator(sample_rate=1.0, rng=random.Random(3))
        service = MembershipService(
            backend="bloom",
            num_shards=2,
            bits_per_key=10.0,
            registry=registry,
            fpr_estimator=estimator,
        )
        service.load(KEYS)
        service.query_batch(KEYS[:50] + [f"neg-{i}" for i in range(50)])
        families = parse_families(render_text(registry))
        sampled = families["repro_shard_fpr_sampled_total"][1]
        assert sum(sampled.values()) >= 50  # every positive verdict sampled
        assert "repro_shard_observed_fpr" in families
        assert service.fpr_estimator is estimator


class TestNetworkExposition:
    def _serve(self, coroutine):
        return asyncio.run(coroutine)

    def test_http_metrics_serves_valid_exposition(self, service):
        async def scenario():
            async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
                host, port = await server.start_http()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET /query?key=key-1 HTTP/1.1\r\n\r\n")
                await writer.drain()
                await reader.read()
                writer.close()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET /metrics HTTP/1.1\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return raw

        raw = self._serve(scenario())
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"200 OK" in head
        assert b"Content-Type: text/plain; version=0.0.4; charset=utf-8" in head
        families = parse_families(body.decode("utf-8"))
        # The catalogue covers every subsystem: service counters, query and
        # rebuild latencies, batcher counters, per-shard views, stage traces.
        for name in (
            "repro_service_queries_total",
            "repro_query_seconds",
            "repro_rebuild_seconds",
            "repro_batch_flushes_total",
            "repro_batch_size",
            "repro_shard_queries_total",
            "repro_stage_seconds",
        ):
            assert name in families, name
        label = service._obs_label
        series = families["repro_service_queries_total"][1]
        assert series[f'repro_service_queries_total{{service="{label}"}}'] >= 1

    def test_metrics_line_command_is_dot_terminated(self, service):
        async def scenario():
            async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
                host, port = await server.start_tcp()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"Q key-1\nMETRICS\nPING\n")
                await writer.drain()
                assert (await reader.readline()).startswith(b"V ")
                lines = []
                while True:
                    line = (await reader.readline()).decode().rstrip("\n")
                    if line == ".":
                        break
                    lines.append(line)
                pong = await reader.readline()
                writer.close()
                return lines, pong

        lines, pong = self._serve(scenario())
        assert pong == b"PONG\n"
        families = parse_families("\n".join(lines))
        assert "repro_service_queries_total" in families
        assert "repro_batch_flushes_total" in families

    def test_stats_json_includes_uptime_and_rss(self, service):
        async def scenario():
            async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
                host, port = await server.start_http()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET /stats HTTP/1.1\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return raw

        raw = self._serve(scenario())
        payload = json.loads(raw.partition(b"\r\n\r\n")[2])
        assert payload["uptime_seconds"] > 0.0
        assert "rss_bytes" in payload

    def test_batcher_stats_still_read_through_instruments(self, service):
        async def scenario():
            async with AsyncMembershipServer(service, max_wait_ms=1.0) as server:
                front = server.batcher
                answers = await asyncio.gather(
                    *[front.query(key) for key in KEYS[:32]]
                )
                assert all(answers)
                return front.batching_stats()

        stats = self._serve(scenario())
        assert stats.coalesced_keys == 32
        assert stats.flushes == stats.full_flushes + stats.timer_flushes
        assert stats.flushes >= 1


class TestLatencyWindowRace:
    """Regression: snapshots must be taken under the recording lock."""

    def test_concurrent_record_and_percentiles_stay_consistent(self):
        window = LatencyWindow(capacity=64)
        valid = {float(i) for i in range(1000)}
        stop = threading.Event()
        failures = []

        def writer():
            i = 0
            while not stop.is_set():
                window.record(float(i % 1000))
                i += 1

        def reader():
            while not stop.is_set():
                snapshot = window.samples()
                if len(snapshot) > 64:
                    failures.append(f"window overran capacity: {len(snapshot)}")
                if not set(snapshot) <= valid:
                    failures.append("torn window: unknown sample value")
                summary = window.percentiles()
                if summary is not None and not (
                    0.0 <= summary.p50 <= 999.0 and 0.0 <= summary.p99 <= 999.0
                ):
                    failures.append(f"percentiles out of range: {summary}")

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        stop.wait(timeout=0.5)
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures, failures[:3]

    def test_len_and_samples_agree_when_quiet(self):
        window = LatencyWindow(capacity=4)
        for i in range(7):
            window.record(float(i))
        assert len(window) == 4
        assert len(window.samples()) == 4
        assert window.percentiles() is not None
