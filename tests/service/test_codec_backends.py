"""Every registered backend must round-trip through the codec byte-for-byte.

This is the guard rail that catches the *next* backend: registering a policy
whose filters ``repro.service.codec`` cannot frame fails here immediately,
because parallel shard builds and snapshot/restore both depend on frames
(process workers hand finished shards back as codec bytes).

The contract checked per backend:

* ``dumps`` accepts the built filter (framable at all);
* ``dumps(loads(dumps(f))) == dumps(f)`` — decoding and re-encoding is the
  identity on bytes, so nothing is silently dropped or reordered;
* the revived filter answers every probe identically (zero false negatives
  preserved by construction).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service import codec
from repro.service.backends import available_backends, get_backend
from repro.service.shards import ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like
from repro.workloads.zipf import assign_zipf_costs


@pytest.fixture(scope="module")
def dataset():
    return generate_shalla_like(num_positives=400, num_negatives=350, seed=17)


@pytest.fixture(scope="module")
def costs(dataset):
    return assign_zipf_costs(dataset.negatives, skewness=1.0, seed=17)


def _build(name, dataset, costs):
    policy = get_backend(name)
    try:
        return policy.create_filter(
            dataset.positives, negatives=dataset.negatives, costs=costs
        )
    except ConfigurationError as exc:
        if "numpy" in str(exc):
            pytest.skip(f"backend {name!r} needs numpy to build")
        raise


@pytest.mark.parametrize("name", available_backends())
def test_registered_backend_round_trips_byte_for_byte(name, dataset, costs):
    filt = _build(name, dataset, costs)
    frame = codec.dumps(filt)  # CodecError here = backend without codec support
    revived = codec.loads(frame)
    assert type(revived) is type(filt)
    assert codec.dumps(revived) == frame, (
        f"{name}: decode→re-encode changed the frame bytes"
    )
    probe = dataset.positives + dataset.negatives + [
        f"unseen-{name}-{i}" for i in range(300)
    ]
    assert [revived.contains(key) for key in probe] == [
        filt.contains(key) for key in probe
    ]
    assert all(revived.contains(key) for key in dataset.positives)


@pytest.mark.parametrize("name", available_backends())
def test_sharded_store_snapshots_with_every_backend(name, dataset, costs):
    _build(name, dataset, costs)  # numpy skip happens here, not mid-store
    store = ShardedFilterStore.build(
        dataset.positives,
        negatives=dataset.negatives,
        costs=costs,
        num_shards=3,
        backend=name,
    )
    frame = codec.dumps(store)
    revived = codec.loads(frame)
    assert codec.dumps(revived) == frame
    assert revived.backend_name == name
    assert revived.shard_fingerprints == store.shard_fingerprints
    probe = dataset.positives + dataset.negatives
    assert revived.query_many(probe) == store.query_many(probe)
