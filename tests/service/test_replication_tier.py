"""Replication tier: delta diff/apply semantics and the builder→follower wire.

Three layers of claims, tested bottom-up:

* **Frames** — ``make_delta`` captures exactly the dirty shards (O(dirty)
  bytes), ``encode``/``decode`` round-trip bit-faithfully and refuse
  corruption with typed errors, and ``apply_delta`` either assembles a store
  answering identically to a direct build or raises
  :class:`StaleBaseError` — never a silently wrong store.
* **Services** — ``apply_to_service`` hot-swaps through ``install_snapshot``
  on a :class:`MembershipService` (disk mode commits incrementally) and
  rolls a whole :class:`ReplicaPool` fleet.
* **Wire** — a :class:`BuilderPublisher` ships a full snapshot to a fresh
  follower, O(dirty) deltas to a synced one, falls back to full on NACK,
  and a :class:`FollowerClient` reconnects with backoff after connection
  loss.  The crash battery SIGKILLs a disk follower mid-apply and asserts
  it reopens on a committed generation and resyncs over the wire with zero
  wrong verdicts.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.errors import CodecError, ConfigurationError, ServiceError
from repro.obs import Registry
from repro.service import codec, diskstore
from repro.service.diskstore import DIRECTORY_NAME, DiskShardStore, _Directory
from repro.service.multiproc import ReplicaPool
from repro.service.replication import (
    KIND_DELTA,
    KIND_FULL,
    BuilderPublisher,
    FollowerClient,
    SnapshotDelta,
    StaleBaseError,
    apply_delta,
    apply_to_service,
    decode_delta,
    encode_delta,
    full_snapshot,
    make_delta,
)
from repro.service.server import MembershipService, Snapshot
from repro.service.shards import ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like

BACKEND = dict(backend="bloom", bits_per_key=12.0)


@pytest.fixture(scope="module")
def dataset():
    return generate_shalla_like(num_positives=300, num_negatives=200, seed=71)


@pytest.fixture(scope="module")
def probe(dataset):
    return dataset.positives + dataset.negatives + [f"repl-{i}" for i in range(100)]


def _build(keys, num_shards=4, **overrides):
    params = {**BACKEND, **overrides}
    return ShardedFilterStore.build(keys, num_shards=num_shards, **params)


def _service(num_shards=4, **kwargs):
    return MembershipService(
        num_shards=num_shards, registry=Registry(), **BACKEND, **kwargs
    )


def _successor(base_store, keys):
    store, rebuilt, skipped = ShardedFilterStore.rebuild_from(
        base_store, keys, **BACKEND
    )
    return store, rebuilt, skipped


# --------------------------------------------------------------------- #
# replace_shards
# --------------------------------------------------------------------- #
def test_replace_shards_shares_clean_filters_by_identity(dataset):
    store = _build(dataset.positives)
    patch_filter = _build(dataset.positives[:40], num_shards=1).filters[0]
    successor = store.replace_shards({1: (patch_filter, 40, 7, 123456, "bloom")})
    assert successor.filters[1] is patch_filter
    for shard in (0, 2, 3):
        assert successor.filters[shard] is store.filters[shard]
    assert successor.shard_generations[1] == 7
    assert successor.shard_key_counts[1] == 40
    assert successor.shard_fingerprints[1] == 123456
    # the original store is untouched
    assert store.shard_generations[1] == 1


def test_replace_shards_rejects_out_of_range_index(dataset):
    store = _build(dataset.positives)
    with pytest.raises(ConfigurationError, match="shard 9"):
        store.replace_shards({9: (store.filters[0], 1, 1, None, "bloom")})


# --------------------------------------------------------------------- #
# Diff / apply semantics
# --------------------------------------------------------------------- #
def test_delta_round_trip_matches_direct_rebuild(dataset, probe):
    base_store = _build(dataset.positives)
    base = Snapshot(generation=1, store=base_store, num_keys=len(dataset.positives))
    new_keys = dataset.positives + ["repl-new-key"]
    successor, rebuilt, skipped = _successor(base_store, new_keys)
    assert 0 < len(rebuilt) < base_store.num_shards

    delta = make_delta(base, successor)
    assert delta.kind == KIND_DELTA
    assert delta.dirty_shards == rebuilt
    assert delta.base_generation == 1 and delta.new_generation == 2

    decoded = decode_delta(encode_delta(delta))
    assert decoded.dirty_shards == rebuilt
    assert decoded.records == delta.records

    applied = apply_delta(base, decoded)
    assert applied.query_many(probe) == successor.query_many(probe)
    assert applied.shard_generations == successor.shard_generations
    assert applied.shard_fingerprints == successor.shard_fingerprints
    # clean shards came through by reference, not by decode
    for shard in skipped:
        assert applied.filters[shard] is base_store.filters[shard]


def test_one_dirty_shard_delta_is_o_dirty():
    """ROADMAP gate shape: 1 dirty shard of 16 ships ≤ 1/8 of full bytes.

    Needs realistically sized shards — with a handful of keys per shard the
    fixed per-shard records dominate and the ratio says nothing.
    """
    keys = [f"odirty-{i}" for i in range(8000)]
    base_store = _build(keys, num_shards=16)
    base = Snapshot(generation=1, store=base_store, num_keys=len(keys))
    changed = keys[0]
    successor, rebuilt, _ = ShardedFilterStore.rebuild_from(
        base_store, keys, changed_keys=[changed], **BACKEND
    )
    assert len(rebuilt) == 1
    delta_bytes = len(encode_delta(make_delta(base, successor)))
    full_bytes = len(encode_delta(full_snapshot(successor, 2)))
    assert delta_bytes <= full_bytes / 8, (
        f"1-dirty-shard delta is {delta_bytes}B vs {full_bytes}B full"
    )


def test_make_delta_rejects_geometry_and_backward_generation(dataset):
    base_store = _build(dataset.positives)
    base = Snapshot(generation=3, store=base_store, num_keys=len(dataset.positives))
    other_geometry = _build(dataset.positives, num_shards=8)
    with pytest.raises(ServiceError, match="geometry"):
        make_delta(base, other_geometry)
    with pytest.raises(ServiceError, match="move forward"):
        make_delta(base, base_store, new_generation=3)


def test_full_snapshot_round_trip(dataset, probe):
    store = _build(dataset.positives)
    frame = full_snapshot(store, 5)
    assert frame.kind == KIND_FULL
    decoded = decode_delta(encode_delta(frame))
    revived = apply_delta(None, decoded)
    assert revived.query_many(probe) == store.query_many(probe)


def test_apply_rejects_stale_base_generation(dataset):
    base_store = _build(dataset.positives)
    base = Snapshot(generation=1, store=base_store, num_keys=len(dataset.positives))
    successor, _, _ = _successor(base_store, dataset.positives + ["repl-x"])
    delta = make_delta(base, successor)
    wrong_base = Snapshot(generation=2, store=base_store, num_keys=1)
    with pytest.raises(StaleBaseError, match="generation"):
        apply_delta(wrong_base, delta)


def test_apply_rejects_diverged_clean_shards(dataset):
    """A follower whose 'clean' shards hold different keys must refuse."""
    base_store = _build(dataset.positives)
    base = Snapshot(generation=1, store=base_store, num_keys=len(dataset.positives))
    successor, _, _ = _successor(base_store, dataset.positives + ["repl-x"])
    delta = make_delta(base, successor)
    diverged_store = _build(dataset.positives[: len(dataset.positives) // 2])
    diverged = Snapshot(generation=1, store=diverged_store, num_keys=1)
    with pytest.raises(StaleBaseError, match="diverged"):
        apply_delta(diverged, delta)


def test_apply_to_service_without_snapshot_needs_full(dataset):
    base_store = _build(dataset.positives)
    base = Snapshot(generation=1, store=base_store, num_keys=len(dataset.positives))
    successor, _, _ = _successor(base_store, dataset.positives + ["repl-x"])
    delta = make_delta(base, successor)
    fresh = _service()
    with pytest.raises(StaleBaseError, match="full snapshot"):
        apply_to_service(fresh, delta)
    # the full frame does work on a fresh service
    generation = apply_to_service(fresh, encode_delta(full_snapshot(successor, 2)))
    assert generation == 2 and fresh.generation == 2


def test_decode_rejects_corruption(dataset):
    store = _build(dataset.positives)
    base = Snapshot(generation=1, store=store, num_keys=len(dataset.positives))
    successor, _, _ = _successor(store, dataset.positives + ["repl-x"])
    frame = bytearray(encode_delta(make_delta(base, successor)))
    with pytest.raises(CodecError, match="magic"):
        decode_delta(b"XXXX" + bytes(frame[4:]))
    with pytest.raises(CodecError, match="too short"):
        decode_delta(frame[:6])
    with pytest.raises(CodecError, match="length mismatch"):
        decode_delta(bytes(frame) + b"\x00")
    flipped = bytearray(frame)
    flipped[len(flipped) // 2] ^= 0xFF
    with pytest.raises(CodecError):
        decode_delta(bytes(flipped))
    versioned = bytearray(frame)
    versioned[4] = 99
    with pytest.raises(CodecError, match="version"):
        decode_delta(bytes(versioned))


def test_encode_rejects_malformed_deltas():
    with pytest.raises(CodecError, match="kind"):
        encode_delta(
            SnapshotDelta(
                kind=7, base_generation=0, new_generation=1, num_shards=1, router_seed=0
            )
        )
    with pytest.raises(CodecError, match="store frame"):
        encode_delta(
            SnapshotDelta(
                kind=KIND_FULL,
                base_generation=0,
                new_generation=1,
                num_shards=1,
                router_seed=0,
            )
        )


# --------------------------------------------------------------------- #
# Wire: publisher and follower
# --------------------------------------------------------------------- #
def test_publisher_follower_full_then_delta(dataset, probe):
    builder = _service()
    builder.load(dataset.positives)
    with BuilderPublisher(builder, registry=Registry()) as pub:
        host, port = pub.start()
        pub.publish()
        follower = _service()
        with FollowerClient(follower, host, port, registry=Registry()) as client:
            assert client.wait_for_generation(1, timeout=30)
            assert follower.query_many(probe) == builder.query_many(probe)
            # a fresh follower (base gen 0 unretained) got the full frame
            assert client._applied_full.value == 1

            pub.publish_rebuild(dataset.positives + ["repl-wire-key"])
            assert client.wait_for_generation(2, timeout=30)
            assert follower.generation == 2
            assert follower.query("repl-wire-key")
            assert follower.query_many(probe) == builder.query_many(probe)
            # the synced follower got an O(dirty) delta, not a full frame
            assert client._applied_delta.value == 1
            assert pub._shipped_delta.value == 1
            assert pub.follower_states()[0][1] == 2


def test_follower_nack_falls_back_to_full(dataset, probe):
    """A follower whose base diverged NACKs the delta and gets a full frame."""
    builder = _service()
    builder.load(dataset.positives)
    with BuilderPublisher(builder, registry=Registry()) as pub:
        host, port = pub.start()
        pub.publish()
        builder.rebuild(dataset.positives + ["repl-wire-key"])
        pub.publish()
        # same geometry, same generation number, different keys: the delta
        # from the builder's retained gen 1 cannot apply here
        follower = _service()
        follower.load(dataset.positives[:100])
        with FollowerClient(follower, host, port, registry=Registry()) as client:
            assert client.wait_for_generation(2, timeout=30)
            assert follower.query_many(probe) == builder.query_many(probe)
            assert client._stale.value >= 1
            assert client._applied_full.value == 1


def test_follower_reconnects_after_connection_loss(dataset):
    builder = _service()
    builder.load(dataset.positives)
    with BuilderPublisher(builder, registry=Registry()) as pub:
        host, port = pub.start()
        pub.publish()
        follower = _service()
        with FollowerClient(follower, host, port, registry=Registry()) as client:
            assert client.wait_for_generation(1, timeout=30)
            sock = client._sock
            assert sock is not None
            sock.close()  # simulate a network fault
            pub.publish_rebuild(dataset.positives + ["repl-reconnect"])
            assert client.wait_for_generation(2, timeout=30)
            assert follower.query("repl-reconnect")
            assert client.reconnects >= 1


def test_publisher_requires_snapshot_and_closes_cleanly(dataset):
    empty = _service()
    pub = BuilderPublisher(empty, registry=Registry())
    with pytest.raises(ServiceError, match="no snapshot"):
        pub.publish()
    pub.close()
    with pytest.raises(ServiceError, match="closed"):
        pub.start()


def test_replica_pool_follower_rolls_fleet(dataset, probe):
    builder = _service()
    builder.load(dataset.positives)
    with BuilderPublisher(builder, registry=Registry()) as pub:
        host, port = pub.start()
        pub.publish()
        with ReplicaPool(
            replicas=1, num_shards=4, registry=Registry(), **BACKEND
        ) as pool:
            with FollowerClient(pool, host, port, registry=Registry()) as client:
                assert client.wait_for_generation(1, timeout=60)
                assert pool.generation == 1
                assert pool.query_many(probe) == builder.query_many(probe)
                pub.publish_rebuild(dataset.positives + ["repl-pool-key"])
                assert client.wait_for_generation(2, timeout=60)
                answer = pool.query_batch(probe + ["repl-pool-key"])
                # the replica process itself answers with the builder's
                # generation — the fleet rolled, not just the parent
                assert answer.generation == 2
                assert answer.verdicts[-1] is True


# --------------------------------------------------------------------- #
# Disk-mode followers: incremental commits and crash resync
# --------------------------------------------------------------------- #
def test_disk_follower_commits_delta_incrementally(tmp_path, dataset, probe):
    follower = _service(store_path=tmp_path / "store", cache_budget=None)
    follower.load(dataset.positives)
    before = _Directory.decode((tmp_path / "store" / DIRECTORY_NAME).read_bytes())

    builder = _service()
    builder.load(dataset.positives)
    base = builder.snapshot
    successor, rebuilt, skipped = _successor(
        builder.snapshot.store, dataset.positives + ["repl-disk-key"]
    )
    assert 0 < len(rebuilt) < 4
    delta = make_delta(base, successor)

    assert follower.apply_snapshot_delta(encode_delta(delta)) == 2
    assert follower.generation == 2
    assert follower.query("repl-disk-key")
    assert follower.query_many(probe) == successor.query_many(probe)

    after = _Directory.decode((tmp_path / "store" / DIRECTORY_NAME).read_bytes())
    assert after.generation == 2
    for shard in skipped:
        # clean shards' frames were reused in place, not rewritten
        assert after.shards[shard].start_page == before.shards[shard].start_page
        assert after.shards[shard].generation == before.shards[shard].generation
    for shard in rebuilt:
        assert after.shards[shard].start_page != before.shards[shard].start_page

    disk = follower.disk_store
    assert disk is not None and disk.verify() == 4
    disk.close()


#: Fault points before the atomic DIRECTORY rename leave the old generation;
#: from the rename on, the new one is durable (same matrix as the diskstore
#: crash battery — replication rides the identical commit protocol).
_CRASH_POINTS = (
    ("pages-synced", 1),
    ("directory-written", 1),
    ("directory-renamed", 2),
    ("before-cleanup", 2),
)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="crash battery needs os.fork")
@pytest.mark.parametrize("point,survivor_generation", _CRASH_POINTS)
def test_follower_sigkilled_mid_apply_resyncs(
    tmp_path, dataset, probe, point, survivor_generation
):
    """Acceptance: a follower SIGKILL'd mid-apply reopens on a committed
    generation with zero wrong verdicts and resyncs over the wire."""
    path = tmp_path / "store"
    gen1_store = _build(dataset.positives)
    DiskShardStore.create(path, gen1_store, registry=Registry()).close()

    base = Snapshot(generation=1, store=gen1_store, num_keys=len(dataset.positives))
    gen2_keys = dataset.positives + ["repl-crash-key"]
    gen2_store, rebuilt, _ = _successor(gen1_store, gen2_keys)
    delta_bytes = encode_delta(make_delta(base, gen2_store))
    expected = {1: gen1_store.query_many(probe), 2: gen2_store.query_many(probe)}

    pid = os.fork()
    if pid == 0:
        # Child: apply the delta and die at the injected fault point; _exit
        # on any path the SIGKILL does not cover, never raise into pytest.
        try:
            victim = _service(store_path=path)
            victim.open_store()

            def hook(reached, _point=point):
                if reached == _point:
                    os.kill(os.getpid(), signal.SIGKILL)

            diskstore._FAULT_HOOK = hook
            victim.apply_snapshot_delta(delta_bytes)
            os._exit(17)  # fault point never fired
        except BaseException:
            os._exit(18)
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL, (
        f"child survived to status {status!r}; fault {point!r} never fired"
    )

    # The corpse's store reopens on a whole committed generation...
    survivor = _service(store_path=path)
    survivor.open_store()
    assert survivor.generation == survivor_generation
    assert survivor.snapshot.store.query_many(probe) == expected[survivor_generation]
    keys = dataset.positives if survivor_generation == 1 else gen2_keys
    assert all(survivor.snapshot.store.query(key) for key in keys)

    # ...and resyncs to the builder's current generation over the wire.
    builder = _service()
    builder.load(dataset.positives)
    with BuilderPublisher(builder, registry=Registry()) as pub:
        host, port = pub.start()
        pub.publish()
        builder.rebuild(gen2_keys)
        pub.publish()
        with FollowerClient(survivor, host, port, registry=Registry()) as client:
            assert client.wait_for_generation(2, timeout=30)
    assert survivor.generation == 2
    assert survivor.query_many(probe) == expected[2]
    survivor.disk_store.close()


# --------------------------------------------------------------------- #
# Codec interop sanity
# --------------------------------------------------------------------- #
def test_delta_patch_frames_are_ordinary_codec_frames(dataset):
    """Dirty-shard payloads are the same frames snapshots persist."""
    base_store = _build(dataset.positives)
    base = Snapshot(generation=1, store=base_store, num_keys=len(dataset.positives))
    successor, rebuilt, _ = _successor(base_store, dataset.positives + ["repl-x"])
    delta = make_delta(base, successor)
    for patch in delta.patches:
        revived = codec.loads(patch.frame)
        expected = successor.filters[patch.shard]
        assert codec.dumps(revived) == codec.dumps(expected)
