"""MembershipService: serving, hot rebuilds, batch limits, snapshots, stats."""

from __future__ import annotations

import threading

import pytest

from repro.core.bloom import BloomFilter
from repro.errors import ServiceError
from repro.service import codec
from repro.service.server import MembershipService
from repro.workloads.shalla import generate_shalla_like


@pytest.fixture(scope="module")
def dataset():
    return generate_shalla_like(num_positives=1000, num_negatives=900, seed=47)


@pytest.fixture()
def service(dataset):
    svc = MembershipService(backend="habf", num_shards=4, bits_per_key=10.0)
    svc.load(dataset.positives, dataset.negatives)
    return svc


def test_acceptance_sharded_habf_service_zero_false_negatives(dataset, service):
    """ISSUE acceptance: ≥4 HABF shards, zero FN on held-in keys via query_many."""
    assert service.snapshot.store.num_shards >= 4
    assert service.snapshot.store.backend_name == "habf"
    assert all(service.query_many(dataset.positives))


def test_query_before_load_raises():
    svc = MembershipService()
    with pytest.raises(ServiceError, match="load"):
        svc.query("anything")
    with pytest.raises(ServiceError):
        svc.query_many(["anything"])


def test_generation_versioning(dataset):
    svc = MembershipService(backend="bloom", num_shards=4)
    assert svc.generation == 0
    assert svc.load(dataset.positives) == 1
    assert svc.rebuild(dataset.positives) == 2
    assert svc.generation == 2
    assert svc.stats().rebuilds == 1


def test_rebuild_serves_updated_keys(dataset, service):
    added = [f"added-{i}" for i in range(50)]
    removed = set(dataset.positives[:100])
    kept = [key for key in dataset.positives if key not in removed]
    generation = service.rebuild(kept + added, dataset.negatives)
    assert generation == 2
    assert all(service.query_many(kept + added))
    # Removed keys are no longer guaranteed positive; most should now miss.
    removed_answers = service.query_many(sorted(removed))
    assert removed_answers.count(False) > len(removed) // 2


def test_hot_rebuild_mid_traffic_never_drops_held_keys(dataset):
    """Queries racing a rebuild must always see a complete generation."""
    svc = MembershipService(backend="bloom", num_shards=4, bits_per_key=10.0)
    svc.load(dataset.positives)
    failures = []
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            answers = svc.query_many(dataset.positives[:200])
            if not all(answers):
                failures.append(answers)
                return

    workers = [threading.Thread(target=hammer) for _ in range(3)]
    for worker in workers:
        worker.start()
    try:
        # Every rebuilt generation keeps the probed keys, so a query hitting
        # either the old or the new snapshot must answer all-positive.
        for round_number in range(5):
            extra = [f"round-{round_number}-{i}" for i in range(100)]
            svc.rebuild(dataset.positives + extra)
    finally:
        stop.set()
        for worker in workers:
            worker.join()
    assert not failures
    assert svc.generation == 6
    assert svc.stats().rebuilds == 5
    assert all(svc.query_many([f"round-4-{i}" for i in range(100)]))


def test_batch_limits_are_enforced_and_counted(service):
    with pytest.raises(ServiceError, match="rejected"):
        service.query_many([])
    small = MembershipService(backend="bloom", num_shards=2, max_batch_size=10)
    small.load(["a", "b", "c"])
    with pytest.raises(ServiceError, match="rejected"):
        small.query_many([f"k{i}" for i in range(11)])
    assert small.query_many(["a", "b"]) == [True, True]
    assert small.stats().rejected_batches == 1
    assert service.stats().rejected_batches == 1


def test_stats_counters_and_latency_percentiles(dataset, service):
    service.query_many(dataset.positives[:300])
    for key in dataset.negatives[:100]:
        service.query(key)
    stats = service.stats()
    assert stats.generation == 1
    assert stats.num_keys == len(dataset.positives)
    assert stats.queries == 400
    assert stats.batches == 1
    assert stats.positives >= 300
    assert len(stats.shards) == 4
    assert sum(s.queries for s in stats.shards) == 400
    assert stats.latency is not None
    assert stats.latency.count == 101  # one batch sample + 100 scalar samples
    assert 0.0 <= stats.latency.p50 <= stats.latency.p95 <= stats.latency.p99


def test_snapshot_save_and_restore(tmp_path, dataset, service):
    probe = dataset.positives[:200] + dataset.negatives[:200]
    before = service.query_many(probe)
    path = tmp_path / "service.snap"
    written = service.save_snapshot(path)
    assert path.stat().st_size == written
    revived = MembershipService.from_snapshot(path)
    assert revived.generation == 1
    assert revived.query_many(probe) == before
    # The revived service can keep rebuilding with its configured backend.
    revived.rebuild(dataset.positives[:500])
    assert all(revived.query_many(dataset.positives[:500]))


def test_from_snapshot_rejects_non_store_frames(tmp_path):
    bloom = BloomFilter(num_bits=64, num_hashes=2)
    bloom.add("a")
    path = tmp_path / "not-a-store.snap"
    codec.dump(bloom, path)
    with pytest.raises(ServiceError, match="ShardedFilterStore"):
        MembershipService.from_snapshot(path)


def test_install_snapshot_swaps_generations(dataset, service):
    other = MembershipService(backend="bloom", num_shards=4)
    other.load(dataset.positives[:100])
    assert service.install_snapshot(other.snapshot.store) == 2
    assert service.stats().rebuilds == 1
    assert all(service.query_many(dataset.positives[:100]))


def test_invalid_configuration_rejected():
    with pytest.raises(ServiceError):
        MembershipService(num_shards=0)
    with pytest.raises(ServiceError):
        MembershipService(max_batch_size=0)
