"""Unit and integration tests for the disk-backed shard store.

Four contracts are pinned here:

* **Format** — the DIRECTORY record round-trips and every malformed input
  fails with a typed :class:`CodecError` before any field is trusted.
* **Cache** — the byte-budgeted LRU accounts exactly, evicts in recency
  order, and a re-admitted shard answers bit-for-bit like the all-in-RAM
  store (checked across every registered backend).
* **Commits** — incremental commits append only dirty shards' pages, the
  garbage they strand triggers compaction at the configured ratio, and
  every illegal transition (generation not moving, geometry change on an
  incremental commit) raises :class:`ServiceError`.
* **Composition** — ``MembershipService(store_path=...)`` and
  ``ReplicaPool(store_path=...)`` serve off the mapping with verdicts
  identical to RAM mode, and a restarted service resumes from the
  committed generation.

The crash battery and corruption fuzz live in ``test_diskstore_crash.py``
and ``tests/property/test_diskstore_fuzz.py``.
"""

from __future__ import annotations

import zlib

import pytest

from repro.errors import CodecError, ConfigurationError, ServiceError
from repro.obs import Registry
from repro.obs.export import render_text
from repro.service import codec
from repro.service.backends import available_backends, get_backend
from repro.service.diskstore import (
    DiskShardStore,
    DirectoryEntry,
    _Directory,
    _FrameCache,
)
from repro.service.multiproc import ReplicaPool
from repro.service.server import MembershipService
from repro.service.shards import ShardedFilterStore
from repro.workloads.shalla import generate_shalla_like
from repro.workloads.zipf import assign_zipf_costs

PAGE = 256  # small pages keep the test stores tiny but multi-page


@pytest.fixture(scope="module")
def dataset():
    return generate_shalla_like(num_positives=600, num_negatives=500, seed=23)


@pytest.fixture(scope="module")
def costs(dataset):
    return assign_zipf_costs(dataset.negatives, skewness=1.0, seed=23)


@pytest.fixture(scope="module")
def ram_store(dataset, costs):
    return ShardedFilterStore.build(
        dataset.positives,
        negatives=dataset.negatives,
        costs=costs,
        num_shards=4,
        backend="bloom-dh",
    )


@pytest.fixture(scope="module")
def probe(dataset):
    return dataset.positives + dataset.negatives + [
        f"disk-unseen-{i}" for i in range(400)
    ]


def _create(tmp_path, ram_store, **kwargs):
    kwargs.setdefault("page_size", PAGE)
    kwargs.setdefault("registry", Registry())
    return DiskShardStore.create(tmp_path / "store", ram_store, **kwargs)


# --------------------------------------------------------------------- #
# DIRECTORY record format
# --------------------------------------------------------------------- #
class TestDirectoryFormat:
    def _directory(self):
        return _Directory(
            page_size=PAGE,
            generation=7,
            epoch=3,
            next_free_page=10,
            router_seed=42,
            backend_name="bloom-dh",
            pages_name="frames-000003.pages",
            shards=(
                DirectoryEntry(5, 2, 123456, "bloom-dh", 512, 0, 300, 99),
                DirectoryEntry(9, 1, None, "habf", 1024, 2, 2000, 1),
            ),
        )

    def test_round_trip(self):
        directory = self._directory()
        revived = _Directory.decode(directory.encode())
        assert revived.page_size == PAGE
        assert revived.generation == 7
        assert revived.epoch == 3
        assert revived.next_free_page == 10
        assert revived.router_seed == 42
        assert revived.pages_name == "frames-000003.pages"
        assert len(revived.shards) == 2
        first, second = revived.shards
        assert (first.key_count, first.generation, first.fingerprint) == (5, 2, 123456)
        assert second.fingerprint is None
        assert second.backend_name == "habf"
        assert (second.start_page, second.frame_bytes, second.frame_crc) == (2, 2000, 1)
        assert revived.encode() == directory.encode()

    def test_rejects_short_record(self):
        with pytest.raises(CodecError, match="too short"):
            _Directory.decode(b"DSKD")

    def test_rejects_bad_magic(self):
        record = bytearray(self._directory().encode())
        record[0] ^= 0xFF
        with pytest.raises(CodecError, match="magic"):
            _Directory.decode(bytes(record))

    def test_rejects_bad_version(self):
        record = bytearray(self._directory().encode())
        record[4] = 99
        # version is CRC-covered, so either message is acceptable as long
        # as the error is typed; re-seal the CRC to hit the version check.
        record[-4:] = zlib.crc32(bytes(record[4:-4])).to_bytes(4, "big")
        with pytest.raises(CodecError, match="version"):
            _Directory.decode(bytes(record))

    def test_rejects_length_mismatch(self):
        record = self._directory().encode()
        with pytest.raises(CodecError, match="length mismatch"):
            _Directory.decode(record + b"\x00")

    def test_rejects_crc_mismatch(self):
        record = bytearray(self._directory().encode())
        record[20] ^= 0x01
        with pytest.raises(CodecError, match="checksum"):
            _Directory.decode(bytes(record))

    def test_rejects_run_past_next_free_page(self):
        directory = self._directory()
        directory.shards[1].start_page = 9  # 2000 bytes / 256 = 8 pages > end
        with pytest.raises(CodecError, match="exceeds"):
            _Directory.decode(directory.encode())

    def test_rejects_sub_header_frame(self):
        directory = self._directory()
        directory.shards[0].frame_bytes = 4
        with pytest.raises(CodecError, match="smaller"):
            _Directory.decode(directory.encode())


# --------------------------------------------------------------------- #
# LRU cache unit behaviour
# --------------------------------------------------------------------- #
class TestFrameCache:
    def test_byte_accounting_is_exact(self):
        cache = _FrameCache(budget=100)
        cache.put(("a",), "A", 40)
        cache.put(("b",), "B", 35)
        assert cache.bytes == 75
        # replacing a key swaps its cost, never double-counts
        cache.put(("a",), "A2", 10)
        assert cache.bytes == 45
        assert cache.get(("a",)) == "A2"
        assert len(cache) == 2

    def test_evicts_least_recently_used_first(self):
        cache = _FrameCache(budget=100)
        cache.put(("a",), "A", 40)
        cache.put(("b",), "B", 40)
        assert cache.get(("a",)) == "A"  # refresh a; b is now LRU
        cache.put(("c",), "C", 40)  # 120 > 100: evict b only
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "A"
        assert cache.get(("c",)) == "C"
        assert cache.bytes == 80
        assert cache.evictions == 1

    def test_oversized_entry_is_not_retained(self):
        cache = _FrameCache(budget=50)
        cache.put(("big",), "B", 200)
        assert cache.bytes == 0
        assert len(cache) == 0
        assert cache.evictions == 1

    def test_zero_budget_never_admits(self):
        cache = _FrameCache(budget=0)
        cache.put(("a",), "A", 1)
        assert len(cache) == 0
        assert cache.bytes == 0
        assert cache.get(("a",)) is None

    def test_unbounded_budget_never_evicts(self):
        cache = _FrameCache(budget=None)
        for index in range(50):
            cache.put((index,), index, 1 << 20)
        assert len(cache) == 50
        assert cache.bytes == 50 << 20
        assert cache.evictions == 0

    def test_prune_drops_only_dead_keys(self):
        cache = _FrameCache(budget=None)
        cache.put(("live",), 1, 10)
        cache.put(("dead",), 2, 20)
        cache.prune([("live",)])
        assert cache.get(("live",)) == 1
        assert cache.get(("dead",)) is None
        assert cache.bytes == 10

    def test_hit_miss_counters(self):
        cache = _FrameCache(budget=None)
        assert cache.get(("a",)) is None
        cache.put(("a",), "A", 1)
        assert cache.get(("a",)) == "A"
        assert (cache.hits, cache.misses) == (1, 1)


# --------------------------------------------------------------------- #
# Create / open / close lifecycle
# --------------------------------------------------------------------- #
class TestLifecycle:
    def test_create_serves_identically_to_ram(self, tmp_path, ram_store, probe):
        with _create(tmp_path, ram_store) as disk:
            assert disk.generation == 1
            assert disk.num_shards == ram_store.num_shards
            assert disk.serving_store().query_many(probe) == ram_store.query_many(probe)
            assert disk.verify() == ram_store.num_shards
            assert disk.garbage_ratio == 0.0

    def test_reopen_cold_serves_identically(self, tmp_path, ram_store, probe):
        expected = ram_store.query_many(probe)
        _create(tmp_path, ram_store).close()
        with DiskShardStore.open(
            tmp_path / "store", cache_budget=0, registry=Registry()
        ) as disk:
            assert disk.serving_store().query_many(probe) == expected
            stats = disk.cache_stats()
            assert stats["entries"] == 0 and stats["bytes"] == 0
            assert stats["misses"] >= ram_store.num_shards

    def test_exists(self, tmp_path, ram_store):
        assert not DiskShardStore.exists(tmp_path / "store")
        _create(tmp_path, ram_store).close()
        assert DiskShardStore.exists(tmp_path / "store")

    def test_create_refuses_existing_store(self, tmp_path, ram_store):
        _create(tmp_path, ram_store).close()
        with pytest.raises(ServiceError, match="already holds a store"):
            _create(tmp_path, ram_store)

    def test_open_missing_store_is_typed(self, tmp_path):
        with pytest.raises(ServiceError, match="holds no"):
            DiskShardStore.open(tmp_path / "nowhere", registry=Registry())

    def test_direct_constructor_is_blocked(self):
        with pytest.raises(ServiceError, match="create"):
            DiskShardStore()

    def test_validates_parameters(self, tmp_path, ram_store):
        with pytest.raises(ServiceError, match="generation"):
            _create(tmp_path, ram_store, generation=0)
        with pytest.raises(ServiceError, match="page_size"):
            _create(tmp_path, ram_store, page_size=32)
        with pytest.raises(ServiceError, match="cache_budget"):
            _create(tmp_path, ram_store, cache_budget=-1)
        with pytest.raises(ServiceError, match="compact_ratio"):
            _create(tmp_path, ram_store, compact_ratio=0.0)

    def test_close_is_idempotent_and_final(self, tmp_path, ram_store):
        disk = _create(tmp_path, ram_store)
        disk.close()
        disk.close()
        with pytest.raises(ServiceError, match="closed"):
            disk.serving_store()
        with pytest.raises(ServiceError, match="closed"):
            disk.commit(ram_store, 2)

    def test_frames_are_page_aligned(self, tmp_path, ram_store):
        with _create(tmp_path, ram_store) as disk:
            directory = disk._epoch.directory
            runs = sorted(
                (entry.start_page, entry.frame_bytes) for entry in directory.shards
            )
            expected_start = 0
            for start_page, frame_bytes in runs:
                assert start_page == expected_start
                expected_start += -(-frame_bytes // PAGE)
            assert directory.next_free_page == expected_start
            assert disk.mapped_bytes == expected_start * PAGE
            assert disk.pages_file.stat().st_size == disk.mapped_bytes


# --------------------------------------------------------------------- #
# Eviction / re-admission equivalence (per backend)
# --------------------------------------------------------------------- #
def _build_filter(name, dataset, costs):
    try:
        return get_backend(name).create_filter(
            dataset.positives, negatives=dataset.negatives, costs=costs
        )
    except ConfigurationError as exc:
        if "numpy" in str(exc):
            pytest.skip(f"backend {name!r} needs numpy to build")
        raise


@pytest.mark.parametrize("name", available_backends())
def test_evicted_shard_readmits_bit_for_bit(name, dataset, costs, probe, tmp_path):
    """Cold, hot, and re-admitted-after-eviction answers are all identical.

    A budget of one serialized frame forces every shard touch to evict the
    previous tenant, so a full probe pass exercises decode → cache → evict
    → re-decode on every shard; verdicts must match the all-in-RAM store
    bit for bit (in particular: zero false negatives survive the cycle).
    """
    _build_filter(name, dataset, costs)  # numpy skip happens here
    ram = ShardedFilterStore.build(
        dataset.positives,
        negatives=dataset.negatives,
        costs=costs,
        num_shards=3,
        backend=name,
    )
    expected = ram.query_many(probe)
    largest = max(len(codec.dumps(filt)) for filt in ram.filters)
    disk = DiskShardStore.create(
        tmp_path / "store",
        ram,
        page_size=PAGE,
        cache_budget=largest,  # at most one decoded shard stays hot
        registry=Registry(),
    )
    try:
        view = disk.serving_store()
        assert view.query_many(probe) == expected
        stats = disk.cache_stats()
        assert stats["bytes"] <= largest
        assert stats["entries"] <= 1
        # thrash the cache shard by shard, then re-check the full batch
        for shard in range(ram.num_shards):
            disk._filter_for(disk._epoch, shard)
        assert disk.cache_stats()["evictions"] >= ram.num_shards - 1
        assert view.query_many(probe) == expected
        assert all(view.query(key) for key in dataset.positives)
    finally:
        disk.close()


def test_cache_metrics_track_counters(tmp_path, ram_store, probe):
    registry = Registry()
    with _create(tmp_path, ram_store, cache_budget=None, registry=registry) as disk:
        disk.serving_store().query_many(probe)
        disk.serving_store().query_many(probe)
        stats = disk.cache_stats()
        assert stats["misses"] == ram_store.num_shards
        assert stats["hits"] >= ram_store.num_shards
        exposition = render_text(registry)
        assert "repro_disk_cache_hits_total" in exposition
        assert "repro_disk_cache_misses_total" in exposition
        assert "repro_disk_mapped_bytes" in exposition
        assert "repro_disk_cold_read_seconds" in exposition
        hits = registry.counter(
            "repro_disk_cache_hits_total", "", ("store",)
        ).labels(disk._obs_label)
        assert hits.value == stats["hits"]


# --------------------------------------------------------------------- #
# Commit protocol: incremental appends, compaction, illegal transitions
# --------------------------------------------------------------------- #
class TestCommits:
    def test_incremental_commit_appends_only_dirty_pages(
        self, tmp_path, dataset, costs, ram_store
    ):
        disk = _create(tmp_path, ram_store, compact_ratio=0.95)
        try:
            pages_before = disk.pages_file
            size_before = pages_before.stat().st_size
            keys = dataset.positives + ["fresh-key-1", "fresh-key-2"]
            successor, rebuilt, skipped = ShardedFilterStore.rebuild_from(
                disk.serving_store(),
                keys,
                negatives=dataset.negatives,
                costs=costs,
                backend="bloom-dh",
            )
            assert rebuilt and skipped, "fixture must dirty some but not all shards"
            disk.commit(successor, 2, rebuilt_shards=rebuilt)
            assert disk.generation == 2
            assert disk.pages_file == pages_before, "append must reuse the page file"
            grown = disk.pages_file.stat().st_size - size_before
            dirty_pages = sum(
                -(-len(codec.dumps(successor.filters[shard])) // PAGE)
                for shard in rebuilt
            )
            assert grown == dirty_pages * PAGE
            assert 0.0 < disk.garbage_ratio < 1.0
            assert disk.serving_store().query_many(keys) == [True] * len(keys)
            assert disk.verify() == ram_store.num_shards
        finally:
            disk.close()

    def test_reopen_after_incremental_commit(self, tmp_path, dataset, costs, ram_store):
        disk = _create(tmp_path, ram_store, compact_ratio=0.95)
        keys = dataset.positives + ["reopen-key"]
        successor, rebuilt, _ = ShardedFilterStore.rebuild_from(
            disk.serving_store(), keys, negatives=dataset.negatives, costs=costs,
            backend="bloom-dh",
        )
        disk.commit(successor, 2, rebuilt_shards=rebuilt)
        expected = disk.serving_store().query_many(keys + dataset.negatives)
        disk.close()
        with DiskShardStore.open(tmp_path / "store", registry=Registry()) as reopened:
            assert reopened.generation == 2
            assert reopened.serving_store().query_many(keys + dataset.negatives) == expected

    def test_clean_shards_stay_cached_across_commits(
        self, tmp_path, dataset, costs, ram_store
    ):
        """Cache keys are content-addressed, so clean shards never re-decode."""
        disk = _create(tmp_path, ram_store, compact_ratio=0.95)
        try:
            disk.serving_store().query_many(dataset.positives)  # warm every shard
            misses_before = disk.cache_stats()["misses"]
            keys = dataset.positives + ["cache-key-1"]
            successor, rebuilt, skipped = ShardedFilterStore.rebuild_from(
                disk.serving_store(), keys, negatives=dataset.negatives, costs=costs,
                backend="bloom-dh",
            )
            disk.commit(successor, 2, rebuilt_shards=rebuilt)
            disk.serving_store().query_many(keys)
            misses = disk.cache_stats()["misses"] - misses_before
            assert misses <= len(rebuilt), (
                f"{misses} cold decodes after a commit that only dirtied "
                f"{len(rebuilt)} shards — clean shards must stay hot"
            )
        finally:
            disk.close()

    def test_append_garbage_triggers_compaction(self, tmp_path, dataset, costs, ram_store):
        registry = Registry()
        disk = _create(
            tmp_path, ram_store, compact_ratio=0.3, registry=registry
        )
        try:
            epoch_file = disk.pages_file
            keys = list(dataset.positives)
            generation = 1
            compactions = registry.counter(
                "repro_disk_compactions_total", "", ("store",)
            ).labels(disk._obs_label)
            # keep dirtying a few shards until the dead fraction crosses
            # 0.3 and the commit path rewrites the page file; 3 churn keys
            # per round can dirty at most 3 of the 4 shards, so every
            # commit stays incremental (a full commit would also swap the
            # file, masking the compaction path this test pins)
            for round_index in range(12):
                keys = keys + [f"churn-{round_index}-{i}" for i in range(3)]
                successor, rebuilt, _ = ShardedFilterStore.rebuild_from(
                    disk.serving_store(), keys, negatives=dataset.negatives,
                    costs=costs, backend="bloom-dh",
                )
                assert 0 < len(rebuilt) < successor.num_shards
                generation += 1
                disk.commit(successor, generation, rebuilt_shards=rebuilt)
                if compactions.value >= 1:
                    break
            assert disk.pages_file != epoch_file, "compaction never triggered"
            assert not epoch_file.exists(), "old page file must be unlinked"
            assert disk.garbage_ratio <= 0.3
            assert compactions.value >= 1
            assert disk.serving_store().query_many(keys) == [True] * len(keys)
            assert disk.verify() == ram_store.num_shards
        finally:
            disk.close()

    def test_generation_must_move_forward(self, tmp_path, ram_store):
        with _create(tmp_path, ram_store) as disk:
            with pytest.raises(ServiceError, match="move forward"):
                disk.commit(ram_store, 1)

    def test_geometry_change_requires_full_commit(self, tmp_path, dataset, costs, ram_store):
        other = ShardedFilterStore.build(
            dataset.positives, negatives=dataset.negatives, costs=costs,
            num_shards=2, backend="bloom-dh",
        )
        with _create(tmp_path, ram_store) as disk:
            with pytest.raises(ServiceError, match="geometry"):
                disk.commit(other, 2, rebuilt_shards=[0])
            # a full commit handles it fine
            disk.commit(other, 2)
            assert disk.num_shards == 2
            assert disk.generation == 2

    def test_undeclared_dirty_shard_is_rejected(self, tmp_path, dataset, costs, ram_store):
        with _create(tmp_path, ram_store) as disk:
            successor, rebuilt, _ = ShardedFilterStore.rebuild_from(
                disk.serving_store(), dataset.positives + ["sneaky"],
                negatives=dataset.negatives, costs=costs, backend="bloom-dh",
            )
            if len(rebuilt) < 2:
                pytest.skip("need at least two dirty shards to under-declare")
            with pytest.raises(ServiceError, match="rebuilt_shards"):
                disk.commit(successor, 2, rebuilt_shards=rebuilt[:1])

    def test_materialize_detaches_from_mapping(self, tmp_path, ram_store, probe):
        with _create(tmp_path, ram_store) as disk:
            plain = disk.materialize()
            expected = disk.serving_store().query_many(probe)
        # the disk store is closed and its mapping released; the
        # materialized store must keep answering
        assert plain.query_many(probe) == expected
        assert codec.loads(codec.dumps(plain)).query_many(probe) == expected


# --------------------------------------------------------------------- #
# MembershipService composition
# --------------------------------------------------------------------- #
class TestServiceDiskMode:
    def test_cache_budget_requires_store_path(self):
        with pytest.raises(ServiceError, match="store_path"):
            MembershipService(cache_budget=1024)

    def test_load_and_rebuild_through_disk(self, tmp_path, dataset, probe):
        service = MembershipService(
            backend="bloom-dh", num_shards=4,
            store_path=tmp_path / "svc", registry=Registry(),
        )
        ram = MembershipService(backend="bloom-dh", num_shards=4, registry=Registry())
        assert service.load(dataset.positives, dataset.negatives) == 1
        ram.load(dataset.positives, dataset.negatives)
        assert service.disk_store is not None
        assert service.disk_store.generation == 1
        assert service.query_many(probe) == ram.query_many(probe)

        keys = dataset.positives + ["svc-key"]
        assert service.rebuild(keys, dataset.negatives) == 2
        assert service.disk_store.generation == 2
        assert service.query_many(keys) == [True] * len(keys)

    def test_restart_resumes_committed_generation(self, tmp_path, dataset):
        path = tmp_path / "svc"
        first = MembershipService(
            backend="bloom-dh", num_shards=4, store_path=path, registry=Registry()
        )
        first.load(dataset.positives, dataset.negatives)
        first.rebuild(dataset.positives + ["gen2"], dataset.negatives)
        expected = first.query_many(dataset.positives + ["gen2"])
        first.disk_store.close()

        # a fresh process: same path, no snapshot — rebuild() opens the
        # committed store first and moves forward from its generation
        second = MembershipService(
            backend="bloom-dh", num_shards=4, store_path=path, registry=Registry()
        )
        generation = second.rebuild(
            dataset.positives + ["gen2"], dataset.negatives
        )
        assert generation == 3
        assert second.query_many(dataset.positives + ["gen2"]) == expected
        second.disk_store.close()

    def test_open_store_without_path_is_typed(self):
        service = MembershipService(backend="bloom-dh", registry=Registry())
        with pytest.raises(ServiceError, match="store_path"):
            service.open_store()

    def test_snapshot_round_trip_in_disk_mode(self, tmp_path, dataset, probe):
        service = MembershipService(
            backend="bloom-dh", num_shards=4,
            store_path=tmp_path / "svc", registry=Registry(),
        )
        service.load(dataset.positives, dataset.negatives)
        expected = service.query_many(probe)
        snapshot_path = tmp_path / "snapshot.repro"
        assert service.save_snapshot(snapshot_path) > 0
        # restore into a plain RAM service: frames must carry real filters,
        # not lazy disk proxies
        revived = MembershipService.from_snapshot(snapshot_path, registry=Registry())
        assert revived.query_many(probe) == expected
        service.disk_store.close()


# --------------------------------------------------------------------- #
# ReplicaPool composition
# --------------------------------------------------------------------- #
class TestReplicaPoolDiskMode:
    def test_pool_serves_and_rebuilds_off_one_store(self, tmp_path, dataset):
        probe = dataset.positives[:50] + dataset.negatives[:50]
        with ReplicaPool(
            replicas=2, backend="bloom-dh", num_shards=4,
            store_path=tmp_path / "pool", cache_budget=1 << 20,
        ) as pool:
            pool.load(dataset.positives, dataset.negatives)
            assert pool.arena is None, "disk mode must not publish an arena"
            assert pool.disk_store is not None
            assert pool.disk_store.generation == 1
            expected = pool.disk_store.serving_store().query_many(probe)
            assert pool.query_many(probe) == expected

            pool.rebuild(dataset.positives + ["pool-key"], dataset.negatives)
            assert pool.disk_store.generation == 2
            assert pool.query_many(["pool-key"]) == [True]
            assert all(
                report["generation"] == 2 for report in pool.stats_by_replica()
            )
