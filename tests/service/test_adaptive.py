"""Tests for workload-adaptive backend selection.

Three layers, mirroring the subsystem itself:

* :class:`BackendScorer` / :class:`AdaptivePolicy` unit tests drive the
  scoring and migration decision from hand-built :class:`ShardStats` /
  :class:`ShardFprEstimate` values — no filters are built, so every branch
  (no evidence, hysteresis, keep-assignment, foreign incumbents) is exact.
* Service integration tests run a real :class:`MembershipService` with an
  estimator at ``sample_rate=1.0``; false-positive evidence is injected
  through the estimator's own observation path (deterministic — it does not
  depend on which keys a particular filter happens to leak), and the
  migration must ride the rebuild's atomic generation swap.
* Migration-consistency tests assert the serving contract *during* a
  migrating rebuild under concurrent traffic: no false negatives, monotone
  generations — and the replica-pool variant additionally survives a
  SIGKILLed replica before the roll.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.obs import FprEstimator, Registry, ShardFprEstimate
from repro.obs.export import render_text
from repro.service import MembershipService
from repro.service.adaptive import (
    AdaptivePolicy,
    BackendCandidate,
    BackendScorer,
    analytic_bits_per_key,
    analytic_fpr,
)
from repro.service.multiproc import ReplicaPool
from repro.service.stats import ShardStats

CANDIDATES = [
    BackendCandidate("bloom", {"bits_per_key": 10.0}),
    BackendCandidate("xor", {"bits_per_key": 10.0}),
    BackendCandidate("habf", {"bits_per_key": 10.0}),
]

KEYS = [f"member-{i:05d}" for i in range(2400)]
NEGATIVES = [f"flood-{i:05d}" for i in range(1200)]
COSTS = {key: 30.0 for key in NEGATIVES}


def _stats(backend="xor", queries=20000, positives=2000, num_keys=1000):
    return ShardStats(
        shard=0,
        num_keys=num_keys,
        queries=queries,
        positives=positives,
        size_in_bits=10 * num_keys,
        backend=backend,
    )


def _estimate(
    shard=0,
    sampled=500,
    false_positives=60,
    known=55,
    observed_fpr=0.012,
    cost_weighted_fpr=0.08,
    known_cost_fraction=0.95,
    queries=20000,
    positives=2000,
):
    return ShardFprEstimate(
        shard=shard,
        sampled=sampled,
        false_positives=false_positives,
        fp_fraction=false_positives / sampled if sampled else 0.0,
        observed_fpr=observed_fpr,
        cost_weighted_fpr=cost_weighted_fpr,
        queries=queries,
        positives=positives,
        known_false_positives=known,
        known_fp_fraction=known / false_positives if false_positives else 0.0,
        known_fp_cost_fraction=known_cost_fraction,
    )


# --------------------------------------------------------------------- #
# Analytic models
# --------------------------------------------------------------------- #
class TestAnalyticModels:
    def test_xor_beats_bloom_shaped_backends_on_model_fpr(self):
        assert analytic_fpr("xor", 10.0, 1000) < analytic_fpr("bloom", 10.0, 1000)
        # HABF's *model* FPR is the Bloom bound: its advantage is modelled
        # by the suppression priors, not by a lower base rate.
        assert analytic_fpr("habf", 10.0, 1000) == analytic_fpr("bloom", 10.0, 1000)

    def test_xor_memory_model_follows_its_capacity_formula(self):
        from repro.baselines.xor_filter import fingerprint_bits_for_budget

        bits = fingerprint_bits_for_budget(10.0, 10_000)
        # The peeling construction over-allocates ~23% slots over the
        # fingerprint width it actually selects.
        assert analytic_bits_per_key("xor", 10.0, 10_000) > bits
        assert analytic_bits_per_key("bloom", 10.0, 10_000) == 10.0

    def test_empty_shard_has_no_model_fpr(self):
        assert analytic_fpr("bloom", 10.0, 0) == 0.0


# --------------------------------------------------------------------- #
# BackendScorer
# --------------------------------------------------------------------- #
class TestBackendScorer:
    def test_analytic_only_prefers_xor(self):
        scorer = BackendScorer(min_sampled=100)
        scores = scorer.score_shard(_stats(backend="bloom"), None, CANDIDATES)
        assert scores["xor"] > scores["bloom"]
        assert scores["xor"] > scores["habf"]

    def test_known_dominated_live_errors_prefer_negative_aware_backend(self):
        scorer = BackendScorer(min_sampled=100)
        hot = _estimate()  # errors concentrated on known, costly negatives
        scores = scorer.score_shard(_stats(backend="xor"), hot, CANDIDATES)
        assert scores["habf"] > scores["xor"]
        assert scores["habf"] > scores["bloom"]

    def test_unseen_dominated_live_errors_do_not_prefer_habf(self):
        scorer = BackendScorer(min_sampled=100)
        cold = _estimate(
            known=0,
            known_cost_fraction=0.0,
            observed_fpr=0.004,
            cost_weighted_fpr=0.004,
        )
        scores = scorer.score_shard(_stats(backend="xor"), cold, CANDIDATES)
        # Without known error mass there is nothing to suppress: HABF is
        # just a Bloom-shaped challenger against a healthy incumbent.
        assert scores["habf"] <= scores["xor"]

    def test_suppression_priors_are_overridable(self):
        # A mildly-leaking incumbent whose error mass is known: only the
        # suppression prior can put HABF's effective rate below it.
        mild = _estimate(observed_fpr=0.004, cost_weighted_fpr=0.004)
        stats = _stats(backend="xor")
        assert BackendScorer(min_sampled=100).score_shard(
            stats, mild, CANDIDATES
        )["habf"] > BackendScorer(min_sampled=100).score_shard(
            stats, mild, CANDIDATES
        )["xor"]
        humble = BackendScorer(min_sampled=100, suppression={"habf": 0.0})
        scores = humble.score_shard(stats, mild, CANDIDATES)
        assert scores["habf"] <= scores["xor"]

    def test_live_ok_requires_samples_and_signal(self):
        scorer = BackendScorer(min_sampled=100)
        assert not scorer.live_ok(None)
        assert not scorer.live_ok(_estimate(sampled=99))
        assert not scorer.live_ok(_estimate(observed_fpr=None))
        assert scorer.live_ok(_estimate(sampled=100))

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError, match="unknown scoring layers"):
            BackendScorer(weights={"accuracy": 1.0})
        with pytest.raises(ConfigurationError, match="not all zero"):
            BackendScorer(weights={"fpr": 0.0, "cost": 0.0, "memory": 0.0})
        with pytest.raises(ConfigurationError, match="min_sampled"):
            BackendScorer(min_sampled=0)

    def test_empty_candidates_score_empty(self):
        assert BackendScorer().score_shard(_stats(), None, []) == {}


# --------------------------------------------------------------------- #
# AdaptivePolicy.plan()
# --------------------------------------------------------------------- #
class TestAdaptivePolicy:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError, match="at least one candidate"):
            AdaptivePolicy([])
        with pytest.raises(ConfigurationError, match="duplicate"):
            AdaptivePolicy([BackendCandidate("xor"), BackendCandidate("xor")])
        with pytest.raises(ConfigurationError, match="hysteresis"):
            AdaptivePolicy([BackendCandidate("xor")], hysteresis=-0.1)

    def test_no_live_evidence_never_migrates(self):
        policy = AdaptivePolicy(CANDIDATES, scorer=BackendScorer(min_sampled=100))
        plan = policy.plan([_stats(backend="xor")], [None])
        assert plan.migrations == []
        # The incumbent is a candidate, so the plan still pins it.
        assert plan.assignments[0][0] == "xor"
        assert plan.scores[0].winner == "xor"
        assert not plan.scores[0].live

    def test_hot_known_cost_evidence_migrates_to_habf(self):
        policy = AdaptivePolicy(CANDIDATES, scorer=BackendScorer(min_sampled=100))
        plan = policy.plan([_stats(backend="xor")], [_estimate()])
        assert plan.migrations == [0]
        name, kwargs = plan.assignments[0]
        assert name == "habf"
        assert kwargs == {"bits_per_key": 10.0}
        assert plan.scores[0].live
        assert plan.scores[0].margin > 0

    def test_hysteresis_blocks_marginal_challengers(self):
        # Composite scores live in [0, 1], so a margin gate of 2.0 can
        # never be met: the same hot evidence must now keep the incumbent.
        policy = AdaptivePolicy(
            CANDIDATES, scorer=BackendScorer(min_sampled=100), hysteresis=2.0
        )
        plan = policy.plan([_stats(backend="xor")], [_estimate()])
        assert plan.migrations == []
        assert plan.assignments[0][0] == "xor"
        assert plan.scores[0].winner == "xor"
        assert plan.scores[0].margin == 0.0

    def test_keep_assignment_prevents_reverting_migrated_shards(self):
        policy = AdaptivePolicy(CANDIDATES, scorer=BackendScorer(min_sampled=100))
        # A shard already serving on habf, with its evidence freshly reset
        # (the post-migration state): no live signal, no migration — but the
        # plan must keep pinning habf or the rebuild would silently revert
        # the shard to the call-level backend.
        plan = policy.plan([_stats(backend="habf")], [None])
        assert plan.migrations == []
        assert plan.assignments[0][0] == "habf"

    def test_foreign_incumbent_is_scored_but_never_pinned(self):
        policy = AdaptivePolicy(CANDIDATES, scorer=BackendScorer(min_sampled=100))
        plan = policy.plan([_stats(backend="wbf")], [None])
        assert plan.migrations == []
        assert plan.assignments == {}
        assert "wbf" in plan.scores[0].scores

    def test_shard_without_traffic_never_migrates(self):
        policy = AdaptivePolicy(CANDIDATES, scorer=BackendScorer(min_sampled=100))
        idle = _stats(backend="xor", queries=0, positives=0)
        plan = policy.plan([idle], [_estimate()])
        assert plan.migrations == []


# --------------------------------------------------------------------- #
# Service integration
# --------------------------------------------------------------------- #
def _adaptive_service(min_sampled=40, num_shards=4, **kwargs):
    estimator = FprEstimator(sample_rate=1.0, rng=random.Random(7))
    policy = AdaptivePolicy(CANDIDATES, scorer=BackendScorer(min_sampled=min_sampled))
    service = MembershipService(
        backend="xor",
        num_shards=num_shards,
        bits_per_key=10.0,
        fpr_estimator=estimator,
        adaptive_policy=policy,
        **kwargs,
    )
    return service, estimator


def _inject_false_positives(service, estimator, shards, per_shard=80):
    """Deterministically accuse ``shards`` of leaking known negatives.

    Feeding the estimator's own observation path (rather than hoping the
    filter leaks specific keys) keeps the test independent of any backend's
    actual false-positive pattern; the oracle rejects the flood keys, the
    known-negative set claims them, and the costs make them expensive.
    """
    store = service.snapshot.store
    wanted = set(shards)
    injected = {shard: 0 for shard in wanted}
    for key in NEGATIVES:
        shard = store.shard_of(key)
        if shard in wanted and injected[shard] < per_shard:
            estimator.observe(key, True, shard)
            injected[shard] += 1
    assert all(count == per_shard for count in injected.values())


class TestServiceIntegration:
    def test_migration_rides_the_rebuild_and_resets_evidence(self):
        service, estimator = _adaptive_service(registry=Registry())
        service.load(KEYS, negatives=NEGATIVES, costs=COSTS)
        # Real positive traffic supplies the per-shard counters and the
        # sampled positive verdicts the live gate requires.
        for start in range(0, len(KEYS), 256):
            service.query_many(KEYS[start : start + 256])
        _inject_false_positives(service, estimator, shards={0, 1})

        generation = service.rebuild(KEYS, negatives=NEGATIVES, costs=COSTS)

        assert generation == 2
        stats = service.stats()
        assert stats.adaptive is not None
        assert stats.adaptive.last_migrated == [0, 1]
        assert stats.adaptive.migrations == 2
        assert stats.adaptive.evaluations == 1
        assert stats.adaptive.shard_backends == ["habf", "habf", "xor", "xor"]
        assert service.snapshot.store.backend_name == "mixed"
        # Evidence for migrated shards resets (it described the old
        # backend); un-migrated shards keep their tallies.  Checked before
        # any further traffic re-accumulates samples.
        assert estimator.shard_estimate(0, 0, 0).sampled == 0
        assert estimator.shard_estimate(1, 0, 0).sampled == 0
        assert estimator.shard_estimate(2, 0, 0).sampled > 0
        # Migrating must never cost a positive: the new generation still
        # contains every member key.
        assert all(service.query_many(KEYS))
        # The migrated shards' filters were rebuilt with the flood keys as
        # negatives; HABF suppresses known negatives near-perfectly.
        flood_hits = sum(
            service.query(key)
            for key in NEGATIVES
            if service.snapshot.store.shard_of(key) in (0, 1)
        )
        assert flood_hits <= len(NEGATIVES) * 0.05

    def test_migrated_shards_stick_and_stay_clean_on_quiet_rebuilds(self):
        service, estimator = _adaptive_service(registry=Registry())
        service.load(KEYS, negatives=NEGATIVES, costs=COSTS)
        for start in range(0, len(KEYS), 256):
            service.query_many(KEYS[start : start + 256])
        _inject_false_positives(service, estimator, shards={0})
        service.rebuild(KEYS, negatives=NEGATIVES, costs=COSTS)
        assert service.stats().adaptive.last_migrated == [0]

        before = service.stats()
        service.rebuild(KEYS, negatives=NEGATIVES, costs=COSTS)
        after = service.stats()
        # Fresh evidence has not accrued, so nothing migrates — and the
        # keep-assignment means the migrated shard neither reverts nor
        # counts dirty: the whole rebuild is a no-op skip.
        assert after.adaptive.last_migrated == []
        assert after.adaptive.shard_backends == before.adaptive.shard_backends
        assert after.shards_rebuilt == before.shards_rebuilt
        assert after.shards_skipped == before.shards_skipped + 4
        assert all(service.query_many(KEYS))

    def test_without_estimator_the_policy_never_migrates(self):
        policy = AdaptivePolicy(CANDIDATES, scorer=BackendScorer(min_sampled=1))
        service = MembershipService(
            backend="xor",
            num_shards=4,
            bits_per_key=10.0,
            adaptive_policy=policy,
            registry=Registry(),
        )
        service.load(KEYS, negatives=NEGATIVES, costs=COSTS)
        service.query_many(KEYS[:512])
        service.rebuild(KEYS, negatives=NEGATIVES, costs=COSTS)
        stats = service.stats()
        assert stats.adaptive.evaluations == 1
        assert stats.adaptive.migrations == 0
        assert set(stats.adaptive.shard_backends) == {"xor"}

    def test_adaptive_metrics_are_exposed(self):
        registry = Registry()
        service, estimator = _adaptive_service(registry=registry)
        service.load(KEYS, negatives=NEGATIVES, costs=COSTS)
        for start in range(0, len(KEYS), 256):
            service.query_many(KEYS[start : start + 256])
        _inject_false_positives(service, estimator, shards={0})
        service.rebuild(KEYS, negatives=NEGATIVES, costs=COSTS)
        text = render_text(registry)
        assert "repro_adaptive_evaluations_total" in text
        assert "repro_adaptive_migrations_total" in text
        assert 'repro_adaptive_shard_backend{' in text
        assert 'backend="habf"' in text
        assert "repro_adaptive_score{" in text


# --------------------------------------------------------------------- #
# Migration consistency under concurrent traffic
# --------------------------------------------------------------------- #
class TestMigrationConsistency:
    def test_no_false_negatives_and_monotone_generations_during_migration(self):
        service, estimator = _adaptive_service(registry=Registry())
        service.load(KEYS, negatives=NEGATIVES, costs=COSTS)
        for start in range(0, len(KEYS), 256):
            service.query_many(KEYS[start : start + 256])
        _inject_false_positives(service, estimator, shards={0, 1})

        stop = threading.Event()
        failures: list = []
        sequences: list = []

        def hammer():
            seen = []
            while not stop.is_set():
                answer = service.query_batch(KEYS[:64])
                if not all(answer.verdicts):
                    failures.append("false negative mid-migration")
                seen.append(answer.generation)
            sequences.append(seen)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.05)
            generation = service.rebuild(KEYS, negatives=NEGATIVES, costs=COSTS)
            time.sleep(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        assert not failures
        assert generation == 2
        assert service.stats().adaptive.last_migrated == [0, 1]
        for sequence in sequences:
            assert sequence == sorted(sequence), (
                f"client observed generations out of order: {sequence}"
            )
        observed = {generation for sequence in sequences for generation in sequence}
        assert observed <= {1, 2}


# --------------------------------------------------------------------- #
# Replica-pool: SIGKILL a replica, then migrate the surviving fleet
# --------------------------------------------------------------------- #
class TestReplicaPoolMigration:
    def test_sigkilled_replica_then_adaptive_roll_of_survivors(self):
        estimator = FprEstimator(sample_rate=1.0, rng=random.Random(11))
        policy = AdaptivePolicy(CANDIDATES, scorer=BackendScorer(min_sampled=40))
        with ReplicaPool(
            replicas=3,
            backend="xor",
            num_shards=4,
            bits_per_key=10.0,
            request_timeout=10.0,
            fpr_estimator=estimator,
            adaptive_policy=policy,
        ) as pool:
            pool.load(KEYS, negatives=NEGATIVES, costs=COSTS)
            # Window dispatch feeds the parent-side traffic counters and
            # the estimator (the adaptive evidence path).
            for start in range(0, len(KEYS), 256):
                pool.query_batch(KEYS[start : start + 256])
            store = pool._builder.snapshot.store
            wanted, injected = {0, 1}, {0: 0, 1: 0}
            for key in NEGATIVES:
                shard = store.shard_of(key)
                if shard in wanted and injected[shard] < 80:
                    estimator.observe(key, True, shard)
                    injected[shard] += 1

            victim = pool.replica_pids[0]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.2)
            # In-flight windows that drew the dead replica surface as
            # ServiceError; the survivors keep answering.
            answered = 0
            for _ in range(6):
                try:
                    assert pool.query_batch(KEYS[:16]).verdicts == [True] * 16
                    answered += 1
                except ServiceError:
                    pass
            assert answered >= 4

            # The next rebuild reaps the corpse and rolls the survivors —
            # carrying the adaptive migration — atomically.
            generation = pool.rebuild(KEYS, negatives=NEGATIVES, costs=COSTS)
            assert generation == 2
            stats = pool.stats()
            assert stats.adaptive is not None
            assert stats.adaptive.last_migrated == [0, 1]
            assert stats.adaptive.shard_backends[:2] == ["habf", "habf"]
            per_replica = pool.stats_by_replica()
            assert len(per_replica) == 2  # the fleet shrank to the survivors
            assert {report["generation"] for report in per_replica} == {2}
            # Every surviving replica serves the migrated store correctly.
            for _ in range(4):
                assert pool.query_batch(KEYS[:32]).verdicts == [True] * 32
