"""Unit tests for the workload generators and the dataset container."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError, DatasetError
from repro.workloads.dataset import MembershipDataset
from repro.workloads.drift import adversarial_flood, churn_keys, zipf_query_stream
from repro.workloads.shalla import generate_shalla_like
from repro.workloads.ycsb import generate_ycsb_like
from repro.workloads.zipf import assign_zipf_costs, zipf_weights


class TestShallaGenerator:
    def test_sizes_and_disjointness(self):
        dataset = generate_shalla_like(500, 400, seed=5)
        assert dataset.num_positives == 500
        assert dataset.num_negatives == 400
        assert not set(dataset.positives) & set(dataset.negatives)

    def test_deterministic(self):
        a = generate_shalla_like(200, 200, seed=9)
        b = generate_shalla_like(200, 200, seed=9)
        assert a.positives == b.positives
        assert a.negatives == b.negatives

    def test_seed_changes_output(self):
        a = generate_shalla_like(200, 200, seed=1)
        b = generate_shalla_like(200, 200, seed=2)
        assert a.positives != b.positives

    def test_keys_look_like_urls(self):
        dataset = generate_shalla_like(100, 100, seed=5)
        assert all(key.startswith("http://") for key in dataset.positives)
        assert all("." in key and "/" in key for key in dataset.negatives)

    def test_classes_have_different_vocabulary(self):
        """Positive URLs use risky categories, negatives benign ones."""
        dataset = generate_shalla_like(300, 300, seed=5)
        risky_hits = sum(1 for key in dataset.positives if any(
            cat in key for cat in ("phish", "malware", "gamble", "warez", "spyware", "adv", "porn", "tracker")
        ))
        benign_hits = sum(1 for key in dataset.negatives if any(
            cat in key for cat in ("news", "shopping", "education", "health", "travel", "sports", "music", "recipes")
        ))
        assert risky_hits == 300
        assert benign_hits == 300

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            generate_shalla_like(0, 10)


class TestYcsbGenerator:
    def test_sizes_and_disjointness(self):
        dataset = generate_ycsb_like(400, 300, seed=5)
        assert dataset.num_positives == 400
        assert dataset.num_negatives == 300
        assert not set(dataset.positives) & set(dataset.negatives)

    def test_key_schema(self):
        dataset = generate_ycsb_like(50, 50, seed=5)
        for key in dataset.positives + dataset.negatives:
            assert key.startswith("user")
            assert len(key) == 4 + 20
            assert key[4:].isdigit()

    def test_deterministic(self):
        a = generate_ycsb_like(100, 100, seed=3)
        b = generate_ycsb_like(100, 100, seed=3)
        assert a.positives == b.positives and a.negatives == b.negatives

    def test_prefix_validation(self):
        with pytest.raises(ConfigurationError):
            generate_ycsb_like(10, 10, prefix="toolong")
        with pytest.raises(ConfigurationError):
            generate_ycsb_like(0, 10)


class TestZipf:
    def test_uniform_when_skewness_zero(self):
        weights = zipf_weights(100, 0.0)
        assert all(w == pytest.approx(1.0) for w in weights)

    def test_mean_is_one(self):
        for skew in (0.5, 1.0, 2.0):
            weights = zipf_weights(500, skew)
            assert sum(weights) / len(weights) == pytest.approx(1.0)

    def test_skewness_concentrates_mass(self):
        mild = zipf_weights(1000, 0.5)
        heavy = zipf_weights(1000, 2.0)
        top_share_mild = sum(sorted(mild, reverse=True)[:10]) / sum(mild)
        top_share_heavy = sum(sorted(heavy, reverse=True)[:10]) / sum(heavy)
        assert top_share_heavy > top_share_mild

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_weights(10, -1.0)

    def test_assign_costs_covers_all_keys(self):
        keys = [f"k{i}" for i in range(50)]
        costs = assign_zipf_costs(keys, 1.0, seed=2)
        assert set(costs) == set(keys)
        assert all(cost > 0 for cost in costs.values())

    def test_assignment_shuffle_is_seeded(self):
        keys = [f"k{i}" for i in range(50)]
        assert assign_zipf_costs(keys, 1.0, seed=2) == assign_zipf_costs(keys, 1.0, seed=2)
        assert assign_zipf_costs(keys, 1.0, seed=2) != assign_zipf_costs(keys, 1.0, seed=3)

    def test_unshuffled_assignment_is_rank_ordered(self):
        keys = ["a", "b", "c"]
        costs = assign_zipf_costs(keys, 1.0, shuffle=False)
        assert costs["a"] >= costs["b"] >= costs["c"]

    def test_empty_keys(self):
        assert assign_zipf_costs([], 1.0) == {}


class TestZipfQueryStream:
    POPULATION = [f"key-{i:03d}" for i in range(40)]

    def test_seed_determinism(self):
        first = zipf_query_stream(self.POPULATION, 200, skewness=1.0, seed=4)
        again = zipf_query_stream(self.POPULATION, 200, skewness=1.0, seed=4)
        other = zipf_query_stream(self.POPULATION, 200, skewness=1.0, seed=5)
        assert first == again
        assert first != other
        assert len(first) == 200
        assert set(first) <= set(self.POPULATION)

    def test_injected_rng_overrides_seed(self):
        first = zipf_query_stream(self.POPULATION, 100, rng=random.Random(9), seed=1)
        again = zipf_query_stream(self.POPULATION, 100, rng=random.Random(9), seed=2)
        assert first == again

    def test_rotate_shifts_the_hot_head(self):
        base = zipf_query_stream(self.POPULATION, 4000, skewness=1.5, seed=3)
        rotated = zipf_query_stream(
            self.POPULATION, 4000, skewness=1.5, seed=3, rotate=10
        )
        assert Counter(base).most_common(1)[0][0] == "key-000"
        assert Counter(rotated).most_common(1)[0][0] == "key-010"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_query_stream(self.POPULATION, -1)
        with pytest.raises(ConfigurationError):
            zipf_query_stream([], 10)


class TestChurnKeys:
    def test_partition_accounting(self):
        keys = [f"key-{i:03d}" for i in range(100)]
        survivors, removed, added = churn_keys(keys, 0.3, seed=2)
        assert (len(survivors), len(removed), len(added)) == (70, 30, 30)
        assert set(survivors) | set(removed) == set(keys)
        assert set(survivors).isdisjoint(removed)
        assert not set(added) & set(keys)

    def test_seed_determinism(self):
        keys = [f"key-{i:03d}" for i in range(100)]
        assert churn_keys(keys, 0.3, seed=2) == churn_keys(keys, 0.3, seed=2)
        assert churn_keys(keys, 0.3, seed=2) != churn_keys(keys, 0.3, seed=3)

    def test_injected_rng_drives_selection(self):
        keys = [f"key-{i:03d}" for i in range(50)]
        first = churn_keys(keys, 0.5, rng=random.Random(7), seed=1)
        again = churn_keys(keys, 0.5, rng=random.Random(7), seed=1)
        assert first == again

    def test_edge_fractions(self):
        keys = ["a", "b", "c"]
        survivors, removed, added = churn_keys(keys, 0.0, seed=1)
        assert (survivors, removed, added) == (keys, [], [])
        survivors, removed, added = churn_keys(keys, 1.0, seed=1)
        assert (survivors, sorted(removed)) == ([], keys)
        assert len(added) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            churn_keys(["a"], 1.5)
        with pytest.raises(ConfigurationError):
            churn_keys(["a"], -0.1)


class TestAdversarialFlood:
    def test_seed_determinism_and_shape(self):
        first = adversarial_flood(100, seed=5)
        assert first == adversarial_flood(100, seed=5)
        assert first != adversarial_flood(100, seed=6)
        assert len(set(first)) == 100
        assert all(key.startswith("atk-") for key in first)

    def test_prefixes_partition_the_keyspace(self):
        flood = adversarial_flood(100, seed=5)
        misses = adversarial_flood(100, seed=5, prefix="miss")
        assert all(key.startswith("miss-") for key in misses)
        assert set(flood).isdisjoint(misses)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            adversarial_flood(-1)
        assert adversarial_flood(0) == []


class TestMembershipDataset:
    def test_validation(self):
        with pytest.raises(DatasetError):
            MembershipDataset(name="x", positives=[], negatives=["a"])
        with pytest.raises(DatasetError):
            MembershipDataset(name="x", positives=["a", "a"], negatives=[])
        with pytest.raises(DatasetError):
            MembershipDataset(name="x", positives=["a"], negatives=["a"])
        with pytest.raises(DatasetError):
            MembershipDataset(name="x", positives=["a"], negatives=["b", "b"])

    def test_cost_helpers(self):
        dataset = MembershipDataset(
            name="x", positives=["p"], negatives=["n1", "n2"], costs={"n1": 3.0}
        )
        assert dataset.cost_of("n1") == 3.0
        assert dataset.cost_of("n2") == 1.0
        assert dataset.total_negative_cost() == 4.0

    def test_with_costs_and_uniform(self):
        dataset = MembershipDataset(name="x", positives=["p"], negatives=["n"], costs={"n": 9.0})
        uniform = dataset.with_uniform_costs()
        assert uniform.cost_of("n") == 1.0
        recosted = dataset.with_costs({"n": 2.0})
        assert recosted.cost_of("n") == 2.0
        assert dataset.cost_of("n") == 9.0  # original untouched

    def test_subsample(self):
        dataset = generate_shalla_like(300, 300, seed=4)
        smaller = dataset.subsample(num_positives=50, num_negatives=60, seed=4)
        assert smaller.num_positives == 50
        assert smaller.num_negatives == 60
        assert set(smaller.positives) <= set(dataset.positives)

    def test_split_negatives(self):
        dataset = generate_shalla_like(100, 200, seed=4)
        train, held_out = dataset.split_negatives(0.75, seed=4)
        assert len(train) == 150
        assert len(held_out) == 50
        assert set(train) | set(held_out) == set(dataset.negatives)
        with pytest.raises(DatasetError):
            dataset.split_negatives(1.5)
