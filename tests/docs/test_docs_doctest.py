"""Documented examples must run: doctest over docs/*.md and README.md.

The CI docs job runs the same command (``python -m doctest``) standalone;
collecting it here too means the tier-1 suite catches documentation rot in
the same run that changed the code.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

pytest.importorskip("numpy")

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)


@pytest.mark.parametrize("path", DOCUMENTS, ids=lambda p: p.name)
def test_documented_examples_run(path):
    results = doctest.testfile(str(path), module_relative=False, verbose=False)
    assert results.failed == 0, f"{path.name}: {results.failed} doctest failures"


def test_docs_are_discovered():
    names = {path.name for path in DOCUMENTS}
    assert {"README.md", "ARCHITECTURE.md", "API.md", "SERVING.md"} <= names
