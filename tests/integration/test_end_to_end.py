"""End-to-end integration tests across modules.

These tests exercise the same paths the examples and benches use: generate a
workload, build every filter under one budget, evaluate, and check that the
paper's qualitative claims hold on held-out data and in the LSM substrate.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro import HABF, FastHABF, HABFParams
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.experiments.registry import build_filter
from repro.kvstore import BloomFilterPolicy, HABFFilterPolicy, LSMTree
from repro.metrics.fpr import evaluate_filter, false_positive_rate, weighted_fpr
from repro.workloads import assign_zipf_costs, generate_shalla_like, generate_ycsb_like

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


class TestHeadlineClaims:
    """The paper's main comparative claims, end to end on both workloads."""

    @pytest.mark.parametrize("generator", [generate_shalla_like, generate_ycsb_like])
    def test_habf_beats_bloom_at_equal_space(self, generator):
        dataset = generator(1500, 1500, seed=21)
        bits_per_key = 8.0
        total_bits = int(bits_per_key * dataset.num_positives)
        habf = HABF.build(
            dataset.positives,
            dataset.negatives,
            params=HABFParams(total_bits=total_bits, seed=21),
        )
        bloom = BloomFilter(num_bits=total_bits, num_hashes=optimal_num_hashes(bits_per_key))
        bloom.add_all(dataset.positives)
        assert false_positive_rate(habf, dataset.negatives) < false_positive_rate(
            bloom, dataset.negatives
        )

    def test_cost_skew_amplifies_habfs_advantage(self):
        dataset = generate_shalla_like(1500, 1500, seed=22)
        costs = assign_zipf_costs(dataset.negatives, skewness=1.5, seed=22)
        total_bits = int(7 * dataset.num_positives)
        habf = HABF.build(
            dataset.positives,
            dataset.negatives,
            costs=costs,
            params=HABFParams(total_bits=total_bits, seed=22),
        )
        bloom = BloomFilter(num_bits=total_bits, num_hashes=optimal_num_hashes(7))
        bloom.add_all(dataset.positives)
        habf_weighted = weighted_fpr(habf, dataset.negatives, costs)
        bloom_weighted = weighted_fpr(bloom, dataset.negatives, costs)
        habf_plain = false_positive_rate(habf, dataset.negatives)
        bloom_plain = false_positive_rate(bloom, dataset.negatives)
        assert habf_weighted < bloom_weighted
        # The *relative* gain should be at least as large under cost weighting
        # as without it (that is what "cost aware" means).
        assert habf_weighted / max(bloom_weighted, 1e-12) <= (
            habf_plain / max(bloom_plain, 1e-12)
        ) + 0.05

    def test_generalisation_to_unseen_negatives(self):
        """On negatives never seen at construction time, HABF behaves like the
        plain Bloom filter that forms its first round: the unseen FPR should
        track the analytic FPR of that (smaller) Bloom half, and the known
        negatives it optimised for must do strictly better than the unseen
        ones.  This documents the honest limitation of the approach: its gains
        come from the known-negative information, not from magic."""
        from repro.theory.bloom_math import bloom_fpr

        dataset = generate_shalla_like(1500, 1500, seed=23)
        train, held_out = dataset.split_negatives(0.6, seed=23)
        params = HABFParams(total_bits=int(9 * dataset.num_positives), seed=23)
        habf = HABF.build(dataset.positives, train, params=params)

        seen_fpr = false_positive_rate(habf, train)
        unseen_fpr = false_positive_rate(habf, held_out)
        analytic_first_round = bloom_fpr(
            params.bloom_bits / dataset.num_positives, params.k
        )
        assert seen_fpr < unseen_fpr
        assert unseen_fpr <= 2.0 * analytic_first_round

    def test_fast_habf_is_between_bf_and_habf(self):
        dataset = generate_ycsb_like(1500, 1400, seed=24)
        total_bits = int(8 * dataset.num_positives)
        params = HABFParams(total_bits=total_bits, seed=24)
        habf = HABF.build(dataset.positives, dataset.negatives, params=params)
        fast = FastHABF.build(dataset.positives, dataset.negatives, params=params)
        bloom = BloomFilter(num_bits=total_bits, num_hashes=optimal_num_hashes(8))
        bloom.add_all(dataset.positives)
        fpr_habf = false_positive_rate(habf, dataset.negatives)
        fpr_fast = false_positive_rate(fast, dataset.negatives)
        fpr_bloom = false_positive_rate(bloom, dataset.negatives)
        assert fpr_habf <= fpr_fast + 0.01
        assert fpr_fast <= fpr_bloom


class TestRegistryOnHeldOutData:
    def test_every_filter_evaluates_cleanly(self):
        pytest.importorskip("numpy")  # the registry sweep includes the learned filters
        dataset = generate_shalla_like(800, 800, seed=31)
        total_bits = 10 * dataset.num_positives
        for name in ("HABF", "f-HABF", "BF", "Xor", "WBF", "LBF", "SLBF", "Ada-BF"):
            filt = build_filter(name, dataset, total_bits, costs=dataset.costs, seed=31)
            result = evaluate_filter(filt, dataset)
            assert result.fnr == 0.0, f"{name} produced false negatives"
            assert 0.0 <= result.weighted_fpr <= 1.0


class TestLSMIntegration:
    def test_habf_policy_cuts_read_cost_versus_bloom(self):
        stored = [f"row:{i:06d}" for i in range(0, 6000, 2)]
        missing = [f"row:{i:06d}" for i in range(1, 6000, 2)]
        frequency = assign_zipf_costs(missing, skewness=1.0, seed=41)

        def run(policy):
            tree = LSMTree(
                memtable_capacity=256,
                filter_policy=policy,
                negative_hints=missing,
                negative_costs=frequency,
            )
            for key in stored:
                tree.put(key, 1)
            tree.flush()
            for key in missing:
                tree.get(key)
            return tree.stats

        bloom_stats = run(BloomFilterPolicy(bits_per_key=10))
        habf_stats = run(HABFFilterPolicy(bits_per_key=10))
        assert habf_stats.wasted_io_cost <= bloom_stats.wasted_io_cost


class TestExamplesRun:
    """Every example script must execute successfully as a subprocess."""

    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "blacklist_gateway.py", "lsm_read_path.py", "cost_aware_tuning.py"],
    )
    def test_example_executes(self, script):
        path = EXAMPLES_DIR / script
        assert path.exists(), f"missing example {script}"
        completed = subprocess.run(
            [sys.executable, str(path)],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip(), "examples should print their results"
