"""Unit tests for the analytic formulas and the paper's bounds."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.theory.bloom_math import bloom_fpr, min_fpr_for_bits_per_key, optimal_k
from repro.theory.habf_bounds import (
    adjustment_probability_lower_bound,
    expected_optimized_collisions_lower_bound,
    expected_single_mapping_probability,
    expressor_insertion_probability,
    habf_fpr_bound,
    habf_fpr_from_components,
)


class TestBloomMath:
    def test_known_value(self):
        # 10 bits/key with 7 hashes is the textbook ~0.8% configuration.
        assert bloom_fpr(10, 7) == pytest.approx(0.00819, abs=2e-4)

    def test_monotone_in_space(self):
        assert bloom_fpr(12, 4) < bloom_fpr(8, 4) < bloom_fpr(4, 4)

    def test_optimal_k_matches_ln2_rule(self):
        for bits in (4, 8, 10, 16):
            assert optimal_k(bits) == max(1, round(math.log(2) * bits))

    def test_optimal_k_is_near_optimal(self):
        bits = 10
        best = optimal_k(bits)
        assert bloom_fpr(bits, best) <= min(bloom_fpr(bits, k) for k in (best - 1, best + 1)) * 1.05

    def test_min_fpr(self):
        assert min_fpr_for_bits_per_key(10) == pytest.approx(0.6185 ** 10)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bloom_fpr(0, 3)
        with pytest.raises(ConfigurationError):
            bloom_fpr(8, 0)
        with pytest.raises(ConfigurationError):
            optimal_k(0)
        with pytest.raises(ConfigurationError):
            min_fpr_for_bits_per_key(-1)


class TestTheorem41:
    def test_lower_bound_formula(self):
        value = expected_single_mapping_probability(10, 3)
        assert value == pytest.approx((0.3) / (math.exp(0.3) - 1.0))

    def test_in_unit_interval(self):
        for bits, k in [(4, 2), (8, 3), (10, 4), (13, 6)]:
            assert 0.0 < expected_single_mapping_probability(bits, k) < 1.0

    def test_decreases_with_density(self):
        # More hashes per bit (denser filter) lowers the single-mapping probability.
        assert expected_single_mapping_probability(10, 2) > expected_single_mapping_probability(10, 8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_single_mapping_probability(0, 2)
        with pytest.raises(ConfigurationError):
            expected_single_mapping_probability(10, 0)


class TestInsertionProbability:
    def test_decreases_with_load(self):
        values = [expressor_insertion_probability(3, 1000, t) for t in (0, 50, 150, 300)]
        assert values == sorted(values, reverse=True)

    def test_zero_when_overloaded(self):
        assert expressor_insertion_probability(3, 10, 100) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expressor_insertion_probability(3, 0, 0)
        with pytest.raises(ConfigurationError):
            expressor_insertion_probability(0, 10, 0)
        with pytest.raises(ConfigurationError):
            expressor_insertion_probability(3, 10, -1)


class TestTheorem42:
    def test_bound_below_collision_count(self):
        bound = expected_optimized_collisions_lower_bound(
            num_collisions=200, adjustment_probability=0.9, num_hashes=3, num_cells=2000
        )
        assert 0 < bound < 200

    def test_zero_when_cells_too_small(self):
        assert (
            expected_optimized_collisions_lower_bound(100, 0.9, num_hashes=4, num_cells=16) == 0.0
        )

    def test_monotone_in_probability(self):
        low = expected_optimized_collisions_lower_bound(100, 0.2, 3, 1000)
        high = expected_optimized_collisions_lower_bound(100, 0.9, 3, 1000)
        assert high > low

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_optimized_collisions_lower_bound(-1, 0.5, 3, 100)
        with pytest.raises(ConfigurationError):
            expected_optimized_collisions_lower_bound(10, 1.5, 3, 100)
        with pytest.raises(ConfigurationError):
            expected_optimized_collisions_lower_bound(10, 0.5, 3, 0)


class TestEq19Bound:
    def test_below_unoptimized_fpr(self):
        bits_per_key, k = 7.5, 3
        bound = habf_fpr_bound(bits_per_key, k, num_negatives=10_000, num_cells=4_000)
        assert 0.0 <= bound < bloom_fpr(bits_per_key, k)

    def test_adjustment_probability_in_unit_interval(self):
        p = adjustment_probability_lower_bound(8, 3, 22)
        assert 0.0 < p < 1.0
        assert adjustment_probability_lower_bound(8, 22, 22) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            habf_fpr_bound(8, 3, num_negatives=0, num_cells=100)


class TestCompositionBound:
    def test_scales_with_occupancy(self):
        low = habf_fpr_from_components(0.01, expressor_cells=1000, inserted_keys=10)
        high = habf_fpr_from_components(0.01, expressor_cells=1000, inserted_keys=500)
        assert low < high
        assert low >= 0.01

    def test_capped_at_one(self):
        assert habf_fpr_from_components(0.9, 10, 100) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            habf_fpr_from_components(0.5, 0, 1)
        with pytest.raises(ConfigurationError):
            habf_fpr_from_components(1.5, 10, 1)
        with pytest.raises(ConfigurationError):
            habf_fpr_from_components(0.5, 10, -1)
