"""Bit-for-bit equivalence of the vectorized hash engine with the scalars.

The batch engine is only correct if every vectorized primitive agrees with
its scalar twin on every byte length (word-based primitives have distinct
full-block and tail code paths, so lengths sweep across several block
boundaries), and if the family-level ``hash_many`` entry points agree with
per-key calls — seeds, double hashing and modulus reduction included.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.hashing import primitives as scalar_primitives
from repro.hashing import vectorized
from repro.hashing.base import HashFunction
from repro.hashing.double_hashing import DoubleHashFamily
from repro.hashing.registry import GLOBAL_HASH_FAMILY, build_family


@pytest.fixture(scope="module")
def byte_corpus():
    """Byte strings covering empty input and every residue of 4/8/12-byte blocks."""
    rng = random.Random(2024)
    corpus = [b""]
    for length in list(range(1, 30)) + [31, 32, 33, 47, 48, 49, 95, 96, 97, 128]:
        for _ in range(3):
            corpus.append(bytes(rng.randrange(256) for _ in range(length)))
    return corpus


@pytest.fixture(scope="module")
def corpus_batch(byte_corpus):
    return vectorized.KeyBatch(byte_corpus)


@pytest.mark.parametrize("name", list(scalar_primitives.PRIMITIVES))
def test_batch_primitive_matches_scalar(name, byte_corpus, corpus_batch):
    scalar = scalar_primitives.PRIMITIVES[name]
    expected = [scalar(data) for data in byte_corpus]
    produced = vectorized.BATCH_PRIMITIVES[name](corpus_batch)
    assert produced.dtype == np.uint64
    assert produced.tolist() == expected


@pytest.mark.parametrize("name", list(scalar_primitives.PRIMITIVES))
def test_batch_primitive_empty_batch(name):
    empty = vectorized.KeyBatch([])
    assert vectorized.BATCH_PRIMITIVES[name](empty).shape == (0,)


def test_key_batch_take_preserves_rows():
    keys = ["a", "bb", b"\x00\x01\x02", 7, ""]
    batch = vectorized.KeyBatch(keys)
    sub = batch.take([3, 0])
    assert sub.keys == [7, "a"]
    assert sub.data == [batch.data[3], batch.data[0]]
    assert sub.lengths.tolist() == [8, 1]


def test_hash_function_hash_many_matches_scalar(tiny_keys):
    function = GLOBAL_HASH_FAMILY[2].with_seed(99)
    assert function.hash_many(tiny_keys).tolist() == [function.raw(k) for k in tiny_keys]
    assert function.hash_many(tiny_keys, 101).tolist() == [
        function(k, 101) for k in tiny_keys
    ]


def test_hash_function_hash_many_rejects_bad_modulus(tiny_keys):
    with pytest.raises(ValueError):
        GLOBAL_HASH_FAMILY[0].hash_many(tiny_keys, -1)


def test_family_hash_many_matches_scalar(tiny_keys):
    family = build_family(seed=3)
    indexes = [0, 5, 11, 21]
    matrix = family.hash_many(tiny_keys, indexes=indexes, modulus=4093)
    assert matrix.shape == (len(indexes), len(tiny_keys))
    for row, index in enumerate(indexes):
        assert matrix[row].tolist() == [family[index](k, 4093) for k in tiny_keys]


def test_double_family_hash_many_matches_scalar(tiny_keys):
    family = DoubleHashFamily(size=6, primitive="murmur3", seed=17)
    matrix = family.hash_many(tiny_keys, modulus=997)
    for index in range(6):
        assert matrix[index].tolist() == [family[index](k, 997) for k in tiny_keys]
    single = family[3].hash_many(tiny_keys, 997)
    assert single.tolist() == [family[3](k, 997) for k in tiny_keys]


def test_double_family_base_pass_is_memoised(tiny_keys):
    family = DoubleHashFamily(size=4, primitive="xxhash", seed=1)
    batch = vectorized.KeyBatch(tiny_keys)
    first = family.base_hashes_many(batch)
    second = family.base_hashes_many(batch)
    assert first[0] is second[0] and first[1] is second[1]


def test_hash_many_fallback_without_numpy(tiny_keys, monkeypatch):
    family = build_family(seed=3)
    expected = family.hash_many(tiny_keys, indexes=[1, 4], modulus=211)
    monkeypatch.setattr(vectorized, "np", None)
    fallback = family.hash_many(tiny_keys, indexes=[1, 4], modulus=211)
    assert isinstance(fallback, list)
    assert fallback == expected.tolist()


def test_hash_batch_falls_back_to_scalar_for_unknown_primitive(tiny_keys):
    def custom(data: bytes) -> int:
        return (len(data) * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)

    function = HashFunction(name="custom", index=0, primitive=custom)
    assert function.hash_many(tiny_keys).tolist() == [function.raw(k) for k in tiny_keys]


def test_key_batch_concat_matches_fresh_encoding():
    """concat of pre-encoded parts equals encoding all keys in one pass.

    This is the serving micro-batcher's reuse path: multi-key requests are
    encoded at arrival and merged with the scalar tail at flush time.
    """
    groups = [["alpha", "longer-key-here"], [b"\x00\x01", 42], [""], ["tail"]]
    parts = [vectorized.KeyBatch(group) for group in groups]
    merged = vectorized.KeyBatch.concat(parts)
    flat = [key for group in groups for key in group]
    fresh = vectorized.KeyBatch(flat)
    assert merged.keys == flat
    assert merged.data == fresh.data
    assert merged.matrix.shape == fresh.matrix.shape
    assert np.array_equal(merged.matrix, fresh.matrix)
    assert np.array_equal(merged.lengths, fresh.lengths)
    # Hash programs see identical inputs whichever way the batch was built.
    for name in ("xxhash", "murmur3"):
        assert np.array_equal(
            vectorized.BATCH_PRIMITIVES[name](merged),
            vectorized.BATCH_PRIMITIVES[name](fresh),
        )


def test_key_batch_concat_edge_cases():
    single = vectorized.KeyBatch(["only"])
    assert vectorized.KeyBatch.concat([single]) is single
    with pytest.raises(ValueError):
        vectorized.KeyBatch.concat([])
    with_empty = vectorized.KeyBatch.concat([vectorized.KeyBatch([]), single])
    assert with_empty.keys == ["only"]
    assert len(with_empty) == 1


def test_small_windows_take_the_scalar_path_bit_identically():
    # hash_batch answers at or below the crossover with the scalar loop and
    # above it with the numpy column pass; both must produce identical
    # values, so the crossover is a pure latency knob, never a correctness
    # one.
    rows = vectorized.SCALAR_CROSSOVER_ROWS
    keys = [f"https://example.org/path/{i}".encode() for i in range(rows * 2)]
    small = vectorized.as_batch(keys[:rows])  # scalar side of the cut
    large = vectorized.as_batch(keys)  # vectorized side
    for name in ("xxhash", "bkdr", "crc32", "fnv"):
        primitive = scalar_primitives.PRIMITIVES[name]
        np.testing.assert_array_equal(
            np.asarray(vectorized.hash_batch(primitive, small)),
            np.asarray(vectorized.hash_batch(primitive, large))[:rows],
        )
