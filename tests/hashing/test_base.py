"""Unit tests for key normalisation and the HashFunction wrapper."""

from __future__ import annotations

import pytest

from repro.hashing.base import HashFunction, mix64, normalize_key
from repro.hashing.primitives import fnv1a


class TestNormalizeKey:
    def test_bytes_pass_through(self):
        assert normalize_key(b"abc") == b"abc"

    def test_str_is_utf8_encoded(self):
        assert normalize_key("abc") == b"abc"
        assert normalize_key("héllo") == "héllo".encode("utf-8")

    def test_small_ints_use_fixed_width(self):
        assert normalize_key(0) == b"\x00" * 8
        assert normalize_key(1) == b"\x01" + b"\x00" * 7
        assert len(normalize_key((1 << 64) - 1)) == 8

    def test_large_and_negative_ints_round_trip(self):
        big = 1 << 100
        assert int.from_bytes(normalize_key(big), "little", signed=True) == big
        neg = -12345
        assert int.from_bytes(normalize_key(neg), "little", signed=True) == neg

    def test_distinct_ints_normalize_distinctly(self):
        values = {normalize_key(i) for i in range(1000)}
        assert len(values) == 1000

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            normalize_key(3.14)
        with pytest.raises(TypeError):
            normalize_key(["list"])


class TestMix64:
    def test_range(self):
        for value in (0, 1, 12345, (1 << 64) - 1):
            assert 0 <= mix64(value) < (1 << 64)

    def test_bijective_on_sample(self):
        outputs = {mix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000


class TestHashFunction:
    def setup_method(self):
        self.fn = HashFunction(name="fnv", index=0, primitive=fnv1a)

    def test_call_reduces_into_modulus(self):
        for modulus in (1, 2, 17, 1024):
            assert 0 <= self.fn("some-key", modulus) < modulus

    def test_zero_modulus_rejected(self):
        with pytest.raises(ValueError):
            self.fn("key", 0)

    def test_str_and_equivalent_bytes_hash_identically(self):
        assert self.fn.raw("abc") == self.fn.raw(b"abc")

    def test_with_seed_changes_output(self):
        seeded = self.fn.with_seed(99)
        assert seeded.seed == 99
        assert seeded.raw("key") != self.fn.raw("key")

    def test_different_seeds_differ(self):
        a = self.fn.with_seed(1)
        b = self.fn.with_seed(2)
        collisions = sum(1 for i in range(200) if a.raw(f"k{i}") == b.raw(f"k{i}"))
        assert collisions == 0

    def test_frozen_dataclass(self):
        with pytest.raises(AttributeError):
            self.fn.seed = 3  # type: ignore[misc]
