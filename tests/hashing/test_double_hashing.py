"""Unit tests for the Kirsch–Mitzenmacher double-hashing family."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hashing.double_hashing import DoubleHashFamily, double_hashing_family


class TestDoubleHashFamily:
    def test_size_and_indexes(self):
        family = DoubleHashFamily(size=8, primitive="xxhash")
        assert len(family) == 8
        assert [fn.index for fn in family] == list(range(8))

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            DoubleHashFamily(size=0)

    def test_invalid_primitive(self):
        with pytest.raises(ConfigurationError):
            DoubleHashFamily(size=4, primitive="definitely-not-a-hash")

    def test_simulated_hashes_disagree(self):
        family = DoubleHashFamily(size=10, primitive="cityhash")
        positions = {fn("some-key", 1_000_003) for fn in family}
        assert len(positions) >= 9

    def test_deterministic(self):
        a = DoubleHashFamily(size=4, primitive="xxhash", seed=3)
        b = DoubleHashFamily(size=4, primitive="xxhash", seed=3)
        for i in range(4):
            assert a[i]("k", 997) == b[i]("k", 997)

    def test_seed_changes_mapping(self):
        a = DoubleHashFamily(size=4, primitive="xxhash", seed=1)
        b = DoubleHashFamily(size=4, primitive="xxhash", seed=2)
        differing = sum(1 for i in range(4) if a[i]("k", 10_007) != b[i]("k", 10_007))
        assert differing >= 3

    def test_interface_matches_hash_family(self):
        family = double_hashing_family(6)
        assert family.initial_selection(3) == [0, 1, 2]
        assert len(family.subset([0, 5])) == 2
        assert len(family.names()) == 6

    def test_initial_selection_bounds(self):
        family = double_hashing_family(4)
        with pytest.raises(ConfigurationError):
            family.initial_selection(5)

    def test_modulus_validation(self):
        family = double_hashing_family(2)
        with pytest.raises(ValueError):
            family[0]("key", 0)
