"""Unit tests for the Table II hash primitives."""

from __future__ import annotations

import pytest

from repro.hashing import primitives
from repro.hashing.primitives import PRIMITIVES

_SAMPLE_INPUTS = [
    b"",
    b"a",
    b"ab",
    b"abc",
    b"abcd",
    b"hello world",
    b"http://example.com/some/path?query=1",
    bytes(range(256)),
    b"x" * 1000,
]


@pytest.mark.parametrize("name", list(PRIMITIVES))
def test_primitive_returns_unsigned_64_bit(name):
    fn = PRIMITIVES[name]
    for data in _SAMPLE_INPUTS:
        value = fn(data)
        assert isinstance(value, int)
        assert 0 <= value < (1 << 64)


@pytest.mark.parametrize("name", list(PRIMITIVES))
def test_primitive_is_deterministic(name):
    fn = PRIMITIVES[name]
    for data in _SAMPLE_INPUTS:
        assert fn(data) == fn(data)


@pytest.mark.parametrize("name", list(PRIMITIVES))
def test_primitive_distinguishes_similar_keys(name):
    """Similar keys should rarely collide; require distinctness on a small set."""
    fn = PRIMITIVES[name]
    keys = [f"key-{i}".encode() for i in range(200)]
    values = {fn(key) for key in keys}
    # Even the weaker classic hashes must separate 200 short distinct strings.
    assert len(values) >= 198


@pytest.mark.parametrize("name", list(PRIMITIVES))
def test_primitive_distribution_is_not_degenerate(name):
    """Hash values reduced by a prime modulus should touch most buckets.

    A prime modulus mirrors how the filters reduce hashes (mod an arbitrary
    bit-array length); some classic hashes (e.g. DEK) have skewed low bits, a
    property the paper explicitly tolerates in its Table II family.
    """
    fn = PRIMITIVES[name]
    buckets = {fn(f"element-{i}".encode()) % 61 for i in range(500)}
    assert len(buckets) >= 40


def test_table_ii_has_22_functions():
    assert len(PRIMITIVES) == 22


def test_fnv_known_value():
    # FNV-1a 64-bit of empty input is the offset basis.
    assert primitives.fnv1a(b"") == 0xCBF29CE484222325


def test_djb2_known_value():
    # djb2 of empty input is the initial value 5381.
    assert primitives.djb2(b"") == 5381


def test_crc32_differs_for_bit_flips():
    base = primitives.crc32(b"hello world")
    flipped = primitives.crc32(b"hello worle")
    assert base != flipped


def test_murmur3_and_xxhash_differ_from_each_other():
    data = b"the same input"
    assert primitives.murmur3(data) != primitives.xxhash(data)


def test_jenkins_handles_block_boundaries():
    # Inputs straddling the 12-byte block boundary must still hash cleanly.
    for length in (11, 12, 13, 23, 24, 25):
        value = primitives.bob_jenkins(b"z" * length)
        assert 0 <= value < (1 << 64)


def test_superfast_handles_all_tail_lengths():
    for length in range(0, 9):
        value = primitives.superfast(b"q" * length)
        assert 0 <= value < (1 << 64)
