"""Unit tests for the HashFamily registry (Table II)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError, UnknownHashError
from repro.hashing.base import HashFunction
from repro.hashing.primitives import PRIMITIVES, fnv1a
from repro.hashing.registry import (
    GLOBAL_HASH_FAMILY,
    HashFamily,
    build_family,
    get_primitive,
    list_hash_names,
)


class TestGlobalFamily:
    def test_matches_table_ii_size(self):
        assert len(GLOBAL_HASH_FAMILY) == 22

    def test_indexes_are_sequential(self):
        for expected, fn in enumerate(GLOBAL_HASH_FAMILY):
            assert fn.index == expected

    def test_names_match_primitives(self):
        assert GLOBAL_HASH_FAMILY.names() == list(PRIMITIVES)

    def test_getitem_out_of_range(self):
        with pytest.raises(UnknownHashError):
            GLOBAL_HASH_FAMILY[99]

    def test_members_produce_different_positions(self):
        """Distinct family members should disagree on where a key maps."""
        key = "disagreement-test-key"
        positions = {fn(key, 10_007) for fn in GLOBAL_HASH_FAMILY}
        assert len(positions) >= 18  # near-universal disagreement


class TestHashFamilyConstruction:
    def test_empty_family_rejected(self):
        with pytest.raises(ConfigurationError):
            HashFamily([])

    def test_wrong_indexes_rejected(self):
        functions = [HashFunction(name="fnv", index=1, primitive=fnv1a)]
        with pytest.raises(ConfigurationError):
            HashFamily(functions)

    def test_build_family_subset(self):
        family = build_family(["fnv", "djb", "murmur3"])
        assert len(family) == 3
        assert family.names() == ["fnv", "djb", "murmur3"]

    def test_build_family_unknown_name(self):
        with pytest.raises(UnknownHashError):
            build_family(["not-a-hash"])

    def test_repeated_names_get_distinct_seeds(self):
        family = build_family(["xxhash", "xxhash", "xxhash"], seed=5)
        outputs = {fn.raw("key") for fn in family}
        assert len(outputs) == 3

    def test_get_primitive(self):
        assert get_primitive("fnv") is PRIMITIVES["fnv"]
        with pytest.raises(UnknownHashError):
            get_primitive("nope")

    def test_list_hash_names_is_copy(self):
        names = list_hash_names()
        names.append("bogus")
        assert "bogus" not in list_hash_names()


class TestSelections:
    def test_initial_selection(self):
        assert GLOBAL_HASH_FAMILY.initial_selection(3) == [0, 1, 2]

    def test_initial_selection_bounds(self):
        with pytest.raises(ConfigurationError):
            GLOBAL_HASH_FAMILY.initial_selection(0)
        with pytest.raises(ConfigurationError):
            GLOBAL_HASH_FAMILY.initial_selection(23)

    def test_random_selection_distinct_and_in_range(self):
        rng = random.Random(3)
        selection = GLOBAL_HASH_FAMILY.random_selection(5, rng)
        assert len(set(selection)) == 5
        assert all(0 <= index < 22 for index in selection)

    def test_subset_returns_requested_functions(self):
        subset = GLOBAL_HASH_FAMILY.subset([3, 1, 7])
        assert [fn.index for fn in subset] == [3, 1, 7]
