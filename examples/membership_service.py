#!/usr/bin/env python3
"""Serving a blacklist with the sharded membership service.

Extends ``examples/blacklist_gateway.py`` from a one-shot experiment to the
deployment shape the paper motivates: a gateway that answers sustained query
traffic in batches, hot-rebuilds its filter when the blacklist is refreshed
(old generation serves until the new one swaps in), and persists/restores
snapshots so a restart does not pay construction again.

Run with::

    python examples/membership_service.py

This demo drives the service in-process.  For the network deployment —
an asyncio TCP/HTTP front-end whose adaptive micro-batcher coalesces
concurrent scalar callers into engine batches — see
``examples/async_gateway.py`` and ``docs/SERVING.md``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.service import MembershipService
from repro.workloads import assign_zipf_costs, generate_shalla_like


def all_present(service: MembershipService, keys, chunk=2048) -> bool:
    """Batch-verify membership in service-sized chunks."""
    return all(
        all(service.query_many(keys[start : start + chunk]))
        for start in range(0, len(keys), chunk)
    )


def print_stats(service: MembershipService, label: str) -> None:
    stats = service.stats()
    latency = stats.latency.scaled(1e6) if stats.latency else None
    print(f"\n[{label}] generation={stats.generation} keys={stats.num_keys}")
    print(
        f"  queries={stats.queries} batches={stats.batches} "
        f"positives={stats.positives} rejected_batches={stats.rejected_batches} "
        f"rebuilds={stats.rebuilds}"
    )
    print(
        f"  rebuild pipeline: shards_rebuilt={stats.shards_rebuilt} "
        f"shards_skipped={stats.shards_skipped} "
        f"shard generations={[shard.generation for shard in stats.shards]}"
    )
    if latency:
        print(
            f"  per-key latency: p50={latency.p50:.2f}us p95={latency.p95:.2f}us "
            f"p99={latency.p99:.2f}us (over {latency.count} samples)"
        )
    per_shard = ", ".join(f"#{s.shard}:{s.num_keys}k/{s.queries}q" for s in stats.shards)
    print(f"  shards: {per_shard}")


def main() -> None:
    # Blacklisted URLs (positives), benign URLs from the access log (known
    # negatives), and request frequency as the misidentification cost.
    dataset = generate_shalla_like(num_positives=6_000, num_negatives=6_000, seed=7)
    request_frequency = assign_zipf_costs(dataset.negatives, skewness=1.2, seed=7)

    service = MembershipService(
        backend="habf", num_shards=4, bits_per_key=10.0, max_batch_size=4096
    )
    service.load(dataset.positives, dataset.negatives, request_frequency)

    # A gateway checks requests in batches (one page worth of URLs at a time).
    for start in range(0, 4_000, 400):
        batch = dataset.negatives[start : start + 400]
        service.query_many(batch)
    assert all_present(service, dataset.positives), "zero false negatives"
    print_stats(service, "serving generation 1")

    # The blacklist is refreshed: 500 URLs delisted, 500 new ones added.
    # Queries keep flowing against the old generation during the rebuild.
    refreshed = dataset.positives[500:] + [f"http://new-threat-{i}.example" for i in range(500)]
    service.rebuild(refreshed, dataset.negatives, request_frequency)
    assert all_present(service, refreshed), "zero false negatives after rebuild"
    print_stats(service, "after hot rebuild")

    # Persist the serving snapshot and restart from it without rebuilding.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "blacklist.snap"
        written = service.save_snapshot(path)
        restarted = MembershipService.from_snapshot(path, backend="habf")
        assert all_present(restarted, refreshed)
        print(f"\nsnapshot: {written} bytes; restarted service answers identically")
        print_stats(restarted, "restarted from snapshot")


if __name__ == "__main__":
    main()
