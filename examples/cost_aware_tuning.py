#!/usr/bin/env python3
"""Parameter tuning walkthrough: reproduce the paper's Fig. 9 findings.

Sweeps the three structural HABF parameters — the HashExpressor/Bloom space
split ∆, the hash count k and the HashExpressor cell size — on a Shalla-like
workload, and prints which settings minimise the weighted FPR.  The paper's
conclusions (∆ ≈ 0.25, k = 3–5, cell size 4) should be visible in the output.

Run with::

    python examples/cost_aware_tuning.py
"""

from __future__ import annotations

from repro import HABF, HABFParams
from repro.metrics.fpr import weighted_fpr
from repro.workloads import assign_zipf_costs, generate_shalla_like


def evaluate(dataset, costs, total_bits, **param_overrides) -> float:
    params_kwargs = {"total_bits": total_bits, "k": 3, "delta": 0.25, "cell_hash_bits": 4}
    params_kwargs.update(param_overrides)
    habf = HABF.build(
        positives=dataset.positives,
        negatives=dataset.negatives,
        costs=costs,
        params=HABFParams(**params_kwargs),
    )
    return weighted_fpr(habf, dataset.negatives, costs)


def main() -> None:
    dataset = generate_shalla_like(num_positives=5_000, num_negatives=5_000, seed=3)
    costs = assign_zipf_costs(dataset.negatives, skewness=1.0, seed=3)
    total_bits = int(11 * dataset.num_positives)  # ~2 MB-equivalent budget

    print("space split delta sweep (k=3, cell=4):")
    for delta in (0.1, 0.25, 0.4, 0.6, 0.8):
        print(f"  delta={delta:<4} weighted FPR = {evaluate(dataset, costs, total_bits, delta=delta):.4%}")

    print("hash count k sweep (delta=0.25, cell=4):")
    for k in (2, 3, 4, 5, 6, 8):
        print(f"  k={k:<6} weighted FPR = {evaluate(dataset, costs, total_bits, k=k):.4%}")

    print("cell size sweep (delta=0.25, k=3):")
    for cell in (3, 4, 5):
        print(
            f"  cell={cell:<4} weighted FPR = "
            f"{evaluate(dataset, costs, total_bits, cell_hash_bits=cell):.4%}"
        )


if __name__ == "__main__":
    main()
