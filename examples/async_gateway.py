#!/usr/bin/env python3
"""Async blacklist gateway: TCP server + concurrent clients.

The asyncio companion to ``examples/membership_service.py``: the same
sharded, hot-rebuildable service, but served over the network through
``repro.service.aserve``.  The demo starts an :class:`AsyncMembershipServer`
on an ephemeral port, drives it with 16 concurrent line-protocol clients
(each awaiting every answer before sending the next key — the closed-loop
shape real callers produce), hot-rebuilds the blacklist mid-traffic, prints
the micro-batcher statistics that show scalar callers were coalesced into
engine-sized windows, and ends with the telemetry snapshot an operator
would scrape: per-shard observed FPR from the live estimator plus the
exported metric families (``docs/OBSERVABILITY.md``).

Run with::

    python examples/async_gateway.py                # one process
    python examples/async_gateway.py --workers 4    # replica pool, 4 processes

With ``--workers N > 1`` the engine behind the gateway is a
:class:`repro.service.ReplicaPool`: N worker processes serving the same
shared-memory filter arena, with the micro-batcher keeping N windows in
flight (``docs/SERVING.md`` covers when that pays).  The shutdown telemetry
then also reports per-replica throughput.

See ``docs/SERVING.md`` for the protocol spec and tuning guidance.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.obs import FprEstimator, Registry, render_text
from repro.service import AsyncMembershipServer, MembershipService, ReplicaPool
from repro.workloads import generate_shalla_like

NUM_CLIENTS = 16
KEYS_PER_CLIENT = 50


async def line_client(host: str, port: int, keys) -> list:
    """One closed-loop client: Q per key, parse ``V <generation> <verdict>``."""
    reader, writer = await asyncio.open_connection(host, port)
    answers = []
    for key in keys:
        writer.write(f"Q {key}\n".encode())
        await writer.drain()
        _tag, generation, verdict = (await reader.readline()).split()
        answers.append((int(verdict) == 1, int(generation)))
    writer.close()
    await writer.wait_closed()
    return answers


async def main(workers: int = 1) -> None:
    dataset = generate_shalla_like(num_positives=4_000, num_negatives=4_000, seed=11)
    registry = Registry()
    if workers > 1:
        engine = ReplicaPool(
            replicas=workers,
            backend="bloom-dh",
            num_shards=4,
            bits_per_key=10.0,
            registry=registry,
        )
    else:
        engine = MembershipService(
            backend="bloom-dh",
            num_shards=4,
            bits_per_key=10.0,
            registry=registry,
            # Rate 1.0 shadow-checks every positive verdict — right for a
            # demo; production gateways keep the 0.05 default.
            fpr_estimator=FprEstimator(sample_rate=1.0),
        )
    engine.load(dataset.positives, dataset.negatives[:2_000])

    async with AsyncMembershipServer(engine, max_batch=256, max_wait_ms=2.0) as server:
        host, port = await server.start_tcp()
        mode = f"{workers} replica processes" if workers > 1 else "one process"
        print(f"serving generation {engine.generation} on {host}:{port} ({mode})")

        # Wave 1: concurrent clients checking blacklisted URLs.
        jobs = [
            line_client(host, port, dataset.positives[i :: NUM_CLIENTS][:KEYS_PER_CLIENT])
            for i in range(NUM_CLIENTS)
        ]
        waves = await asyncio.gather(*jobs)
        assert all(verdict for wave in waves for verdict, _ in wave), "zero false negatives"
        generations = {generation for wave in waves for _, generation in wave}
        print(f"wave 1: {NUM_CLIENTS * KEYS_PER_CLIENT} keys, generations seen: {generations}")

        # The blacklist is refreshed while the gateway keeps serving.  For a
        # replica pool this rolls every worker onto the new shared arena; no
        # in-flight window mixes generations either way.
        refreshed = dataset.positives[500:] + [f"new-threat-{i}.example" for i in range(500)]
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, engine.rebuild, refreshed, dataset.negatives[:2_000])
        print(f"hot rebuild complete -> generation {engine.generation}")

        # Wave 2 sees the new generation, old answers were never interrupted.
        wave = await line_client(host, port, refreshed[-5:])
        print(f"wave 2 sample: {wave}")

        # Wave 3: URLs the filter has never seen.  Any positive here is a
        # false positive — exactly what the shadow-sampling estimator checks.
        unseen = dataset.negatives[2_000:3_000]
        jobs = [
            line_client(host, port, unseen[i::NUM_CLIENTS])
            for i in range(NUM_CLIENTS)
        ]
        waves = await asyncio.gather(*jobs)
        hits = sum(verdict for wave in waves for verdict, _ in wave)
        print(f"wave 3: {len(unseen)} unseen keys, {hits} filter positives")

        stats = server.batcher.stats()
        batching = stats.batching
        print(
            f"\nmicro-batcher: {batching.flushes} windows for "
            f"{batching.coalesced_keys} keys "
            f"(batch p50={batching.batch_size.p50:.0f}, "
            f"p99={batching.batch_size.p99:.0f} keys; "
            f"window wait p99={batching.wait.p99 * 1e3:.2f}ms; "
            f"adaptive deadline now {batching.current_wait_ms:.2f}ms)"
        )
        if stats.latency:
            latency = stats.latency.scaled(1e6)
            print(
                f"engine per-key latency: p50={latency.p50:.2f}us "
                f"p99={latency.p99:.2f}us over {latency.count} samples"
            )

    # The server is down; the registry still holds everything it exported.
    # This is the snapshot an operator's last scrape would have carried.
    if workers > 1:
        print("\nper-replica throughput (windows dispatched by the pool):")
        uptime = engine.stats().uptime_seconds or 1.0
        for report in engine.stats_by_replica():
            print(
                f"  replica {report['replica']} (pid {report['pid']}): "
                f"{report['queries']} keys in {report['batches']} windows, "
                f"{report['queries'] / uptime:,.0f} q/s, "
                f"rss {(report['rss_bytes'] or 0) / 1e6:.0f} MB"
            )
        engine.close()
    else:
        print("\nfinal telemetry snapshot (per-shard live FPR):")
        for estimate in engine.fpr_estimates():
            observed = (
                f"{estimate.observed_fpr:.4%}"
                if estimate.observed_fpr is not None
                else "n/a"
            )
            print(
                f"  shard {estimate.shard}: sampled={estimate.sampled} "
                f"false_positives={estimate.false_positives} observed_fpr={observed}"
            )
    families = sum(
        1 for line in render_text(registry).splitlines() if line.startswith("# TYPE")
    )
    engine_stats = engine.stats()
    print(
        f"  {families} metric families exported; uptime "
        f"{engine_stats.uptime_seconds:.1f}s, rss "
        f"{(engine_stats.rss_bytes or 0) / 1e6:.0f} MB"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="replica processes to serve from (1 = single-process engine)",
    )
    arguments = parser.parse_args()
    asyncio.run(main(workers=arguments.workers))
