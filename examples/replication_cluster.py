#!/usr/bin/env python3
"""A one-builder / N-followers replication cluster on localhost.

Runs the full ``repro.service.replication`` topology in one process:

* a **builder** `MembershipService` with a `BuilderPublisher` listening on
  an ephemeral TCP port;
* a **RAM follower** (plain `MembershipService`) and a **disk-backed
  follower** (`store_path=`), each kept in sync by a `FollowerClient`;
* an incremental rebuild on the builder — one shard dirty — shipped to
  both followers as an O(dirty) delta frame, not a full snapshot;
* a simulated follower crash: the disk follower's client is dropped, the
  service is reopened from its committed on-disk generation, and a fresh
  client resyncs it over the wire.

Run with::

    python examples/replication_cluster.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.obs import Registry
from repro.service import BuilderPublisher, FollowerClient, MembershipService
from repro.workloads import generate_shalla_like

BACKEND = dict(backend="bloom-dh", num_shards=8, bits_per_key=12.0)


def status(label: str, service: MembershipService, probe) -> None:
    verdicts = service.query_many(probe)
    print(
        f"  {label:<14} generation={service.generation}  "
        f"probe verdicts={['+' if v else '-' for v in verdicts]}"
    )


def main() -> None:
    data = generate_shalla_like(num_positives=5_000, num_negatives=500, seed=31)
    probe = data.positives[:3] + ["fresh.example", data.negatives[0]]

    print("== builder: load generation 1 and start publishing ==")
    builder = MembershipService(registry=Registry(), **BACKEND)
    builder.load(data.positives)
    publisher = BuilderPublisher(builder, registry=Registry())
    host, port = publisher.start()
    publisher.publish()
    print(f"  publisher listening on {host}:{port}")

    with tempfile.TemporaryDirectory() as workdir:
        store_path = Path(workdir) / "follower-store"

        print("\n== followers: full-snapshot bootstrap ==")
        ram_follower = MembershipService(registry=Registry(), **BACKEND)
        disk_follower = MembershipService(
            registry=Registry(), store_path=store_path, **BACKEND
        )
        ram_client = FollowerClient(
            ram_follower, host, port, label="ram", registry=Registry()
        ).start()
        disk_client = FollowerClient(
            disk_follower, host, port, label="disk", registry=Registry()
        ).start()
        assert ram_client.wait_for_generation(1)
        assert disk_client.wait_for_generation(1)
        status("builder", builder, probe)
        status("ram follower", ram_follower, probe)
        status("disk follower", disk_follower, probe)

        print("\n== incremental rebuild: one key added, one shard dirty ==")
        publisher.publish_rebuild(data.positives + ["fresh.example"])
        assert ram_client.wait_for_generation(2)
        assert disk_client.wait_for_generation(2)
        shipped_delta = int(publisher._shipped_delta.value)
        shipped_full = int(publisher._shipped_full.value)
        print(f"  frames shipped: {shipped_full} full, {shipped_delta} delta")
        status("ram follower", ram_follower, probe)
        status("disk follower", disk_follower, probe)

        print("\n== crash: disk follower dies, reopens, resyncs ==")
        disk_client.close()
        disk_follower.disk_store.close()
        publisher.publish_rebuild(
            data.positives + ["fresh.example", "newer.example"]
        )
        survivor = MembershipService(
            registry=Registry(), store_path=store_path, **BACKEND
        )
        survivor.open_store()
        print(f"  survivor reopened at committed generation {survivor.generation}")
        survivor_client = FollowerClient(
            survivor, host, port, label="disk-reborn", registry=Registry()
        ).start()
        assert survivor_client.wait_for_generation(3)
        status("survivor", survivor, probe + ["newer.example"])
        assert survivor.query("newer.example")

        survivor_client.close()
        ram_client.close()
        survivor.disk_store.close()
    publisher.close()
    print("\ncluster demo complete: deltas shipped, crash resynced")


if __name__ == "__main__":
    main()
