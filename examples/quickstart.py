#!/usr/bin/env python3
"""Quickstart: build a HABF, compare it with a standard Bloom filter.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import HABF, BloomFilter, HABFParams, optimal_num_hashes
from repro.metrics.fpr import false_positive_rate, weighted_fpr


def main() -> None:
    rng = random.Random(42)

    # The set we want to represent (S) and the queries we know will miss (O).
    positives = [f"user:{i}" for i in range(5_000)]
    negatives = [f"visitor:{i}" for i in range(5_000)]
    # Misidentifying some visitors is much more expensive than others
    # (e.g. they trigger a slow fallback path).
    costs = {key: rng.paretovariate(1.3) for key in negatives}

    bits_per_key = 10.0
    total_bits = int(bits_per_key * len(positives))

    # --- Standard Bloom filter -------------------------------------------
    bloom = BloomFilter.from_keys(
        positives, num_bits=total_bits, num_hashes=optimal_num_hashes(bits_per_key)
    )

    # --- HABF: same space budget, but aware of the negatives and costs ----
    params = HABFParams(total_bits=total_bits, k=3, delta=0.25, cell_hash_bits=4)
    habf = HABF.build(positives, negatives, costs, params=params)

    # Both structures never miss a member.
    assert all(key in habf for key in positives)
    assert all(key in bloom for key in positives)

    print(f"space budget          : {total_bits} bits ({bits_per_key} bits/key)")
    print(f"Bloom  FPR            : {false_positive_rate(bloom, negatives):.4%}")
    print(f"HABF   FPR            : {false_positive_rate(habf, negatives):.4%}")
    print(f"Bloom  weighted FPR   : {weighted_fpr(bloom, negatives, costs):.4%}")
    print(f"HABF   weighted FPR   : {weighted_fpr(habf, negatives, costs):.4%}")
    stats = habf.construction_stats
    print(
        f"TPJO                  : {stats.initial_collisions} collisions, "
        f"{stats.optimized} optimised, {stats.adjusted_positive_keys} keys re-hashed"
    )


if __name__ == "__main__":
    main()
