#!/usr/bin/env python3
"""LSM-tree read path: how much disk I/O a filter saves (LevelDB motivation).

The paper's second motivating application: in an LSM-tree key-value store,
every lookup that reaches an SSTable without being rejected by its filter pays
a disk read, and reads at deeper levels are more expensive.  Misses for keys
the store never held are common (e.g. cache-miss storms), their frequency is
observable from the query log, and their cost depends on how deep the lookup
would descend — exactly the negative-key/cost information HABF can exploit.

Run with::

    python examples/lsm_read_path.py
"""

from __future__ import annotations

import random

from repro.kvstore import BloomFilterPolicy, HABFFilterPolicy, LSMTree, NoFilterPolicy
from repro.workloads import assign_zipf_costs


def build_and_query(policy, stored, missing, costs, query_log):
    tree = LSMTree(
        memtable_capacity=512,
        filter_policy=policy,
        negative_hints=missing,
        negative_costs=costs,
    )
    for key in stored:
        tree.put(key, f"value-of-{key}")
    tree.flush()
    for key in query_log:
        tree.get(key)
    return tree


def main() -> None:
    rng = random.Random(11)
    # Interleave stored and never-stored keys so both fall inside table ranges.
    stored = [f"row:{i:07d}" for i in range(0, 20_000, 2)]
    missing = [f"row:{i:07d}" for i in range(1, 12_000, 2)]
    # Miss frequency follows a Zipf law (a few hot missing keys dominate).
    frequency = assign_zipf_costs(missing, skewness=1.1, seed=11)

    # Query log: 30% hits, 70% misses drawn proportionally to frequency.
    weights = [frequency[key] for key in missing]
    query_log = rng.choices(missing, weights=weights, k=7_000) + rng.choices(stored, k=3_000)
    rng.shuffle(query_log)

    print(f"{'policy':<10s} {'I/O cost':>12s} {'wasted I/O':>12s} {'filter rejections':>18s}")
    for policy in (NoFilterPolicy(), BloomFilterPolicy(bits_per_key=10), HABFFilterPolicy(bits_per_key=10)):
        tree = build_and_query(policy, stored, missing, frequency, query_log)
        stats = tree.stats
        print(
            f"{policy.name:<10s} {stats.io_cost:>12.1f} {stats.wasted_io_cost:>12.1f} "
            f"{stats.filter_rejections:>18d}"
        )


if __name__ == "__main__":
    main()
