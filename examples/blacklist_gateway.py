#!/usr/bin/env python3
"""URL-blacklist gateway: the paper's intrusion-detection motivation.

A gateway checks every outgoing request URL against a blacklist.  The filter
must never let a blacklisted URL through unchecked (zero false negatives), and
every false positive triggers an expensive full lookup against the upstream
blacklist service.  Popular benign URLs are requested far more often, so a
false positive on them costs proportionally more — exactly the skewed-cost
setting HABF targets.

Run with::

    python examples/blacklist_gateway.py
"""

from __future__ import annotations

from repro import HABF, BloomFilter, HABFParams, optimal_num_hashes
from repro.baselines import XorFilter
from repro.metrics.fpr import weighted_fpr
from repro.workloads import assign_zipf_costs, generate_shalla_like


def main() -> None:
    # Blacklisted URLs (positives) and the benign URLs seen in the access log
    # (known negatives), with request frequency as the misidentification cost.
    dataset = generate_shalla_like(num_positives=6_000, num_negatives=6_000, seed=7)
    request_frequency = assign_zipf_costs(dataset.negatives, skewness=1.2, seed=7)

    bits_per_key = 9.0
    total_bits = int(bits_per_key * dataset.num_positives)

    bloom = BloomFilter.from_keys(
        dataset.positives, num_bits=total_bits, num_hashes=optimal_num_hashes(bits_per_key)
    )

    xor = XorFilter.from_bits_per_key(dataset.positives, bits_per_key)

    habf = HABF.build(
        positives=dataset.positives,
        negatives=dataset.negatives,
        costs=request_frequency,
        params=HABFParams(total_bits=total_bits, k=3, delta=0.25, seed=7),
    )

    print("Weighted FPR = fraction of benign request volume that hits the slow path")
    for name, filt in [("Bloom filter", bloom), ("Xor filter", xor), ("HABF", habf)]:
        value = weighted_fpr(filt, dataset.negatives, request_frequency)
        print(f"  {name:<14s}: {value:.4%}")

    # The gateway's correctness requirement: no blacklisted URL ever slips by.
    assert all(url in habf for url in dataset.positives)
    print("zero-false-negative check passed for HABF")


if __name__ == "__main__":
    main()
