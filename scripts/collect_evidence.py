#!/usr/bin/env python3
"""Collect the headline measured numbers quoted in EXPERIMENTS.md.

Runs a compact version of the Fig. 10/11/12 comparisons (Shalla-like and
YCSB-like workloads at the paper's 1.5 MB / 15 MB-equivalent budgets) plus the
Fig. 13 skew sweep end points, and writes ``results/evidence.txt``.  The full
per-figure series are produced by ``python -m repro.experiments.run_all``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.experiments.config import ExperimentConfig, PAPER_SHALLA_POSITIVES, PAPER_YCSB_POSITIVES, mb_to_bits_per_key
from repro.experiments.registry import build_filter
from repro.metrics.fpr import evaluate_filter
from repro.metrics.timing import time_construction, time_queries
from repro.obs import FprEstimator, Registry, render_text
from repro.service import MembershipService, codec
from repro.workloads.zipf import assign_zipf_costs

CONFIG = ExperimentConfig(
    shalla_positives=4000,
    shalla_negatives=3900,
    ycsb_positives=4000,
    ycsb_negatives=3700,
    seed=1,
)
ALGOS = ("HABF", "f-HABF", "BF", "Xor", "WBF", "LBF", "SLBF", "Ada-BF")


def section(lines, dataset, paper_positives, space_mb, skew):
    bits_per_key = mb_to_bits_per_key(space_mb, paper_positives)
    total_bits = int(bits_per_key * dataset.num_positives)
    costs = assign_zipf_costs(dataset.negatives, skew, seed=1) if skew else None
    weighted = dataset.with_costs(costs) if costs else dataset
    label = f"zipf({skew})" if skew else "uniform"
    lines.append(f"## {dataset.name} @ {space_mb} MB-equivalent ({bits_per_key:.2f} bits/key), costs={label}")
    for name in ALGOS:
        built, construction = time_construction(
            lambda n=name: build_filter(n, weighted, total_bits, costs=costs, seed=1),
            num_keys=dataset.num_positives,
        )
        query = time_queries(built, dataset.negatives[:1000] + dataset.positives[:1000])
        ev = evaluate_filter(built, weighted)
        lines.append(
            f"  {name:10s} weightedFPR={ev.weighted_fpr:.5%} FPR={ev.fpr:.5%} FNR={ev.fnr:.3%} "
            f"construct={construction.ns_per_key:9.0f} ns/key  query={query.ns_per_key:9.0f} ns/key"
        )
    lines.append("")


def service_section(lines, dataset, num_shards=4, bits_per_key=10.0):
    """Membership-service throughput: batch vs scalar, plus snapshot load time."""
    lines.append(
        f"## membership service: {dataset.name}, {num_shards} HABF shards, "
        f"{bits_per_key} bits/key"
    )
    registry = Registry()
    service = MembershipService(
        backend="habf",
        num_shards=num_shards,
        bits_per_key=bits_per_key,
        registry=registry,
        # Rate 1.0: exact shadow-check of every positive for the evidence file.
        fpr_estimator=FprEstimator(sample_rate=1.0),
    )
    service.load(dataset.positives, dataset.negatives)
    probe = dataset.negatives[:2000] + dataset.positives[:2000]

    start = time.perf_counter()
    for key in probe:
        service.query(key)
    scalar_qps = len(probe) / (time.perf_counter() - start)

    start = time.perf_counter()
    for offset in range(0, len(probe), 500):
        service.query_many(probe[offset : offset + 500])
    batch_qps = len(probe) / (time.perf_counter() - start)

    frame = codec.dumps(service.snapshot.store)
    start = time.perf_counter()
    codec.loads(frame)
    load_ms = (time.perf_counter() - start) * 1e3

    latency = service.stats().latency.scaled(1e6)
    lines.append(
        f"  scalar={scalar_qps:9.0f} keys/s  batch={batch_qps:9.0f} keys/s "
        f"(x{batch_qps / scalar_qps:.2f})"
    )
    lines.append(
        f"  latency (per key; batch calls averaged) p50={latency.p50:.2f}us "
        f"p95={latency.p95:.2f}us p99={latency.p99:.2f}us"
    )
    lines.append(f"  snapshot={len(frame)} bytes, load={load_ms:.2f} ms")

    # Live telemetry for the traffic above: the estimator shadow-checked every
    # positive verdict against the build keys (per-shard counters reset on
    # rebuild, so this reads before the rebuild exercise below).
    for estimate in service.fpr_estimates():
        observed = (
            f"{estimate.observed_fpr:.4%}" if estimate.observed_fpr is not None else "n/a"
        )
        lines.append(
            f"  live FPR shard {estimate.shard}: sampled={estimate.sampled} "
            f"false_positives={estimate.false_positives} observed={observed}"
        )
    families = sum(
        1 for ln in render_text(registry).splitlines() if ln.startswith("# TYPE")
    )
    lines.append(f"  metrics: {families} families exported on /metrics")

    # Incremental rebuild: drop one key so exactly one shard is dirty.
    before = service.stats()
    start = time.perf_counter()
    service.rebuild(dataset.positives[1:], dataset.negatives)
    incremental_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    service.rebuild(dataset.positives[1:], dataset.negatives, incremental=False)
    full_ms = (time.perf_counter() - start) * 1e3
    after = service.stats()
    lines.append(
        f"  rebuild: full={full_ms:.1f} ms, 1-dirty-shard={incremental_ms:.1f} ms "
        f"(x{full_ms / incremental_ms:.1f}); shards rebuilt="
        f"{after.shards_rebuilt - before.shards_rebuilt - num_shards} "
        f"skipped={after.shards_skipped - before.shards_skipped}"
    )
    lines.append("")


def disk_section(lines, dataset, num_shards=4, bits_per_key=10.0):
    """Disk tier: commit, reopen cold on a tight cache budget, verify parity."""
    from repro.service.diskstore import DiskShardStore
    from repro.service.shards import ShardedFilterStore

    lines.append(
        f"## disk tier: {dataset.name}, {num_shards} bloom-dh shards, "
        f"cache budget = half the store"
    )
    store = ShardedFilterStore.build(
        dataset.positives,
        negatives=dataset.negatives,
        num_shards=num_shards,
        backend="bloom-dh",
        bits_per_key=bits_per_key,
    )
    probe = dataset.negatives[:1000] + dataset.positives[:1000]
    # A hot working set the cache can hold: keys of the first two shards.
    hot = [key for key in probe if store.shard_of(key) < 2][:500]
    expected = store.query_many(probe)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "store"
        DiskShardStore.create(path, store).close()
        budget = max(p.stat().st_size for p in path.glob("frames-*.pages")) // 2
        start = time.perf_counter()
        with DiskShardStore.open(path, cache_budget=budget) as disk:
            open_ms = (time.perf_counter() - start) * 1e3
            start = time.perf_counter()
            verdicts = disk.serving_store().query_many(probe)
            cold_ms = (time.perf_counter() - start) * 1e3
            disk.serving_store().query_many(hot)  # warm the hot shards
            start = time.perf_counter()
            hot_verdicts = disk.serving_store().query_many(hot)
            hot_ms = (time.perf_counter() - start) * 1e3
            stats = disk.cache_stats()
            mapped = disk.mapped_bytes
    assert verdicts == expected, "disk tier diverged from the RAM store"
    assert hot_verdicts == store.query_many(hot)
    lines.append(
        f"  open={open_ms:.2f} ms  cold full scan={cold_ms:.1f} ms  "
        f"hot working set={hot_ms:.1f} ms (verdicts == RAM store)"
    )
    lines.append(
        f"  mapped={mapped} bytes, cache budget={budget} bytes, "
        f"cached={stats['bytes']} bytes in {stats['entries']} shards, "
        f"hits={stats['hits']} misses={stats['misses']} "
        f"evictions={stats['evictions']}"
    )
    lines.append("")


def main() -> None:
    out = Path("results")
    out.mkdir(exist_ok=True)
    lines = ["# Headline evidence (compact run; see run_all for full series)", ""]
    shalla = CONFIG.shalla_dataset()
    ycsb = CONFIG.ycsb_dataset()
    section(lines, shalla, PAPER_SHALLA_POSITIVES, 1.5, skew=0.0)
    section(lines, shalla, PAPER_SHALLA_POSITIVES, 1.5, skew=1.0)
    section(lines, ycsb, PAPER_YCSB_POSITIVES, 15.0, skew=0.0)
    section(lines, ycsb, PAPER_YCSB_POSITIVES, 15.0, skew=1.0)
    service_section(lines, shalla)
    disk_section(lines, shalla)
    text = "\n".join(lines)
    (out / "evidence.txt").write_text(text)
    print(text)


if __name__ == "__main__":
    main()
