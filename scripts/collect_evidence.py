#!/usr/bin/env python3
"""Collect the headline measured numbers quoted in EXPERIMENTS.md.

Runs a compact version of the Fig. 10/11/12 comparisons (Shalla-like and
YCSB-like workloads at the paper's 1.5 MB / 15 MB-equivalent budgets) plus the
Fig. 13 skew sweep end points, and writes ``results/evidence.txt``.  The full
per-figure series are produced by ``python -m repro.experiments.run_all``.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.config import ExperimentConfig, PAPER_SHALLA_POSITIVES, PAPER_YCSB_POSITIVES, mb_to_bits_per_key
from repro.experiments.registry import build_filter
from repro.metrics.fpr import evaluate_filter
from repro.metrics.timing import time_construction, time_queries
from repro.workloads.zipf import assign_zipf_costs

CONFIG = ExperimentConfig(
    shalla_positives=4000,
    shalla_negatives=3900,
    ycsb_positives=4000,
    ycsb_negatives=3700,
    seed=1,
)
ALGOS = ("HABF", "f-HABF", "BF", "Xor", "WBF", "LBF", "SLBF", "Ada-BF")


def section(lines, dataset, paper_positives, space_mb, skew):
    bits_per_key = mb_to_bits_per_key(space_mb, paper_positives)
    total_bits = int(bits_per_key * dataset.num_positives)
    costs = assign_zipf_costs(dataset.negatives, skew, seed=1) if skew else None
    weighted = dataset.with_costs(costs) if costs else dataset
    label = f"zipf({skew})" if skew else "uniform"
    lines.append(f"## {dataset.name} @ {space_mb} MB-equivalent ({bits_per_key:.2f} bits/key), costs={label}")
    for name in ALGOS:
        built, construction = time_construction(
            lambda n=name: build_filter(n, weighted, total_bits, costs=costs, seed=1),
            num_keys=dataset.num_positives,
        )
        query = time_queries(built, dataset.negatives[:1000] + dataset.positives[:1000])
        ev = evaluate_filter(built, weighted)
        lines.append(
            f"  {name:10s} weightedFPR={ev.weighted_fpr:.5%} FPR={ev.fpr:.5%} FNR={ev.fnr:.3%} "
            f"construct={construction.ns_per_key:9.0f} ns/key  query={query.ns_per_key:9.0f} ns/key"
        )
    lines.append("")


def main() -> None:
    out = Path("results")
    out.mkdir(exist_ok=True)
    lines = ["# Headline evidence (compact run; see run_all for full series)", ""]
    shalla = CONFIG.shalla_dataset()
    ycsb = CONFIG.ycsb_dataset()
    section(lines, shalla, PAPER_SHALLA_POSITIVES, 1.5, skew=0.0)
    section(lines, shalla, PAPER_SHALLA_POSITIVES, 1.5, skew=1.0)
    section(lines, ycsb, PAPER_YCSB_POSITIVES, 15.0, skew=0.0)
    section(lines, ycsb, PAPER_YCSB_POSITIVES, 15.0, skew=1.0)
    text = "\n".join(lines)
    (out / "evidence.txt").write_text(text)
    print(text)


if __name__ == "__main__":
    main()
