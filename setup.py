"""Setuptools shim so `pip install -e .` works on environments without the
`wheel` package (no-network offline boxes); all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
